"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SMALL = [
    "--seed", "3", "--grid", "10", "10", "--intersections", "25",
    "--buses", "20", "--lines", "4", "--duration", "900",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-traffic" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestGenerate:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "stream.jsonl"
        code = main(["generate", *SMALL, "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "SDEs" in capsys.readouterr().out
        assert out.read_text().count("\n") > 100

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["generate", *SMALL, "--out", str(a)])
        main(["generate", *SMALL, "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestRecognise:
    def test_static(self, capsys):
        code = main(["recognise", *SMALL])
        assert code == 0
        out = capsys.readouterr().out
        assert "static recognition" in out
        assert "scatsCongestion" in out or "busCongestion" in out
        assert "mean recognition time" in out

    def test_adaptive(self, capsys):
        code = main(["recognise", *SMALL, "--adaptive"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-adaptive recognition" in out


class TestRun:
    def test_full_loop(self, capsys):
        code = main(["run", *SMALL, "--participants", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "operator console summary" in out
        assert "crowd:" in out

    def test_with_map(self, capsys):
        code = main(["run", *SMALL, "--participants", "10", "--map"])
        assert code == 0
        assert "low" in capsys.readouterr().out


class TestMetrics:
    def test_prints_sections(self, capsys):
        code = main(["metrics", *SMALL, "--participants", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-process throughput:" in out
        assert "rtec per-definition timings" in out
        assert "crowd.disagreements" in out
        assert "process.cep-" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["metrics", *SMALL, "--participants", "10", "--json", str(path)]
        )
        assert code == 0
        parsed = json.loads(path.read_text())
        assert set(parsed) == {"counters", "gauges", "timings"}
        assert any(
            k.startswith("rtec.definition.") for k in parsed["timings"]
        )

    def test_streams_flag_adds_middleware_metrics(self, capsys):
        code = main(
            ["metrics", *SMALL, "--participants", "10", "--streams"]
        )
        assert code == 0
        assert "streams.process." in capsys.readouterr().out

    def test_run_accepts_parallel_flag(self, capsys):
        code = main(["run", *SMALL, "--participants", "10", "--parallel"])
        assert code == 0
        assert "operator console summary" in capsys.readouterr().out


class TestMap:
    def test_prints_map(self, capsys):
        code = main(["map", *SMALL, "--at", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "low" in out and "high" in out


class TestCrowd:
    def test_prints_estimates(self, capsys):
        code = main(["crowd", "--queries", "100", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P10" in out
        assert "peaked posteriors" in out


class TestRecogniseFromFile:
    def test_replays_persisted_stream(self, tmp_path, capsys):
        out = tmp_path / "stream.jsonl"
        main(["generate", *SMALL, "--out", str(out)])
        capsys.readouterr()
        code = main(["recognise", *SMALL, "--input", str(out)])
        assert code == 0
        replayed = capsys.readouterr().out
        code = main(["recognise", *SMALL])
        regenerated = capsys.readouterr().out
        assert code == 0
        # Replaying the persisted stream recognises the same CEs as
        # regenerating it (determinism + lossless round-trip), modulo
        # the timing line.
        def strip_timing(text):
            return [
                line for line in text.splitlines()
                if "recognition time" not in line
            ]
        assert strip_timing(replayed) == strip_timing(regenerated)


class TestMapSvg:
    def test_writes_svg(self, tmp_path, capsys):
        svg = tmp_path / "city.svg"
        code = main(["map", *SMALL, "--at", "600", "--svg", str(svg)])
        assert code == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")


class TestFaults:
    def test_lists_profiles(self, capsys):
        code = main(["faults"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lossy_scats" in out
        assert "chaos_day" in out

    def test_show_profile_as_json(self, capsys):
        import json

        code = main(["faults", "--show", "delayed_bus"])
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["name"] == "delayed_bus"
        assert parsed["bus"]["delay_rate"] > 0

    def test_show_unknown_profile_reports_cleanly(self, capsys):
        code = main(["faults", "--show", "lossy_scat"])
        assert code == 2
        assert "lossy_scats" in capsys.readouterr().err

    def test_dlq_demo_prints_dead_letters(self, capsys):
        import json

        code = main(["faults", "--dlq-demo", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("["):out.rindex("]") + 1])
        assert payload  # at least one corrupted item dead-lettered
        assert all(
            letter["process"] == "validate"
            or letter["process"].startswith("breaker:")
            for letter in payload
        )
        assert "dead-lettered" in out.splitlines()[-1]

    def test_run_with_blackout_prints_degraded_timeline(self, capsys):
        code = main([
            "run", *SMALL, "--participants", "10",
            "--faults", "blackout_scats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded intervals:" in out
        assert "'scats' degraded over" in out

    def test_run_rejects_unknown_profile(self, capsys):
        code = main(["run", *SMALL, "--faults", "nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestErrorHandling:
    def test_bad_window_step_reports_cleanly(self, capsys):
        code = main(["recognise", *SMALL, "--window", "100", "--step",
                     "500"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "step" in err

    def test_missing_input_file(self, capsys):
        code = main(["recognise", *SMALL, "--input", "/no/such/file.jsonl"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
