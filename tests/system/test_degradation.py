"""Tests for feed-outage detection and degraded-mode recognition."""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.obs import Registry
from repro.system import (
    DegradationManager,
    SystemConfig,
    UrbanTrafficSystem,
    describe_timeline,
)


class TestDegradationManager:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            DegradationManager(threshold=0)

    def test_below_threshold_silence_is_tolerated(self):
        manager = DegradationManager(threshold=2)
        assert manager.observe(300, {"scats": 0, "bus": 5}) == frozenset()
        assert not manager.is_degraded("scats")

    def test_consecutive_silence_trips_the_breaker(self):
        manager = DegradationManager(threshold=2)
        manager.observe(300, {"scats": 0, "bus": 5})
        degraded = manager.observe(600, {"scats": 0, "bus": 5})
        assert degraded == frozenset({"scats"})
        assert manager.intervals["scats"] == [(600, None)]

    def test_intermittent_arrivals_reset_the_streak(self):
        manager = DegradationManager(threshold=2)
        manager.observe(300, {"scats": 0, "bus": 1})
        manager.observe(600, {"scats": 3, "bus": 1})  # resets
        manager.observe(900, {"scats": 0, "bus": 1})
        assert manager.degraded_feeds == frozenset()

    def test_recovery_closes_the_interval(self):
        manager = DegradationManager(threshold=1)
        manager.observe(300, {"scats": 0, "bus": 1})
        assert manager.is_degraded("scats")
        manager.observe(600, {"scats": 4, "bus": 1})
        assert not manager.is_degraded("scats")
        assert manager.intervals["scats"] == [(300, 600)]

    def test_missing_feed_counts_as_silent(self):
        manager = DegradationManager(threshold=1)
        assert manager.observe(300, {"bus": 1}) == frozenset({"scats"})

    def test_suppresses_any_degraded_feed(self):
        manager = DegradationManager(threshold=1)
        manager.observe(300, {"scats": 0, "bus": 1})
        assert manager.suppresses(("scats",))
        assert manager.suppresses(("scats", "bus"))
        assert not manager.suppresses(("bus",))

    def test_finish_keeps_only_feeds_with_outages(self):
        manager = DegradationManager(threshold=1)
        manager.observe(300, {"scats": 0, "bus": 1})
        assert set(manager.finish()) == {"scats"}
        assert manager.finish()["scats"] == [(300, None)]

    def test_metrics_series(self):
        metrics = Registry()
        manager = DegradationManager(threshold=1, metrics=metrics)
        manager.observe(300, {"scats": 0, "bus": 1})
        manager.observe(600, {"scats": 2, "bus": 1})
        counters = metrics.counters()
        assert counters["system.feed.scats.silent_steps"] == 1
        assert counters["system.feed.scats.outages"] == 1
        assert counters["system.feed.scats.recoveries"] == 1
        assert metrics.gauges()["system.feed.scats.degraded"] == 0.0

    def test_describe_timeline(self):
        lines = describe_timeline(
            {"scats": [(300, 900), (1200, None)], "bus": [(600, 900)]}
        )
        assert lines == [
            "feed 'bus' degraded over [600, 900]",
            "feed 'scats' degraded over [300, 900]",
            "feed 'scats' degraded over [1200, end of run]",
        ]


@pytest.fixture(scope="module")
def scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=2,
            rows=12,
            cols=12,
            n_intersections=40,
            n_buses=50,
            n_lines=8,
            unreliable_fraction=0.15,
            n_incidents=6,
            incident_window=(0, 1800),
        )
    )


def _run(scenario, **overrides):
    config = dict(
        window=600, step=300, n_participants=20, seed=2,
    )
    config.update(overrides)
    system = UrbanTrafficSystem(scenario, SystemConfig(**config))
    return system, system.run(0, 1800)


@pytest.mark.chaos
class TestBlackoutEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self, scenario):
        _, healthy = _run(scenario)
        system, dark = _run(scenario, fault_profile="blackout_scats")
        return system, healthy, dark

    def test_scats_outage_recorded(self, runs):
        _, _, dark = runs
        assert "scats" in dark.degraded
        (start, end) = dark.degraded["scats"][0]
        assert end is None  # the blackout never lifts
        assert any("scats" in line for line in dark.degraded_timeline())

    def test_healthy_run_reports_no_outage(self, runs):
        _, healthy, _ = runs
        assert healthy.degraded == {}
        assert healthy.degraded_timeline() == []

    def test_bus_derived_alerts_survive_the_blackout(self, runs):
        _, _, dark = runs
        kinds = dark.console.counts()
        assert kinds.get("bus congestion", 0) > 0

    def test_scats_derived_alerts_are_suppressed(self, runs):
        system, _, dark = runs
        kinds = dark.console.counts()
        assert kinds.get("scats congestion", 0) == 0
        suppressed = system.metrics.counters().get(
            "system.degraded.alerts_suppressed", 0
        )
        assert suppressed > 0

    def test_crowd_queries_are_suppressed(self, runs):
        # ``crowd_suppressed`` also counts cooldown suppressions, so
        # the outage-specific share is the dedicated counter.
        system, healthy, dark = runs
        by_outage = system.metrics.counters()[
            "system.degraded.crowd_suppressed"
        ]
        assert by_outage > 0
        assert dark.crowd_suppressed >= by_outage


class TestDegradationStateDict:
    """Satellite: open-interval handling + breaker state round-trips."""

    def test_finish_preserves_open_interval_end_none(self):
        manager = DegradationManager(threshold=1)
        manager.observe(300, {"scats": 0, "bus": 1})
        manager.observe(600, {"scats": 0, "bus": 0})
        timeline = manager.finish()
        assert timeline["scats"] == [(300, None)]
        assert timeline["bus"] == [(600, None)]
        assert describe_timeline(timeline) == [
            "feed 'bus' degraded over [600, end of run]",
            "feed 'scats' degraded over [300, end of run]",
        ]

    def test_state_dict_round_trip_with_open_interval(self):
        manager = DegradationManager(threshold=1)
        manager.observe(300, {"scats": 0, "bus": 1})
        manager.observe(600, {"scats": 4, "bus": 1})
        manager.observe(900, {"scats": 0, "bus": 1})  # re-trips: open

        revived = DegradationManager(threshold=1)
        revived.load_state_dict(manager.state_dict())
        assert revived.degraded_feeds == frozenset({"scats"})
        assert revived.intervals["scats"] == [(300, 600), (900, None)]
        # The revived breaker continues the same timeline: the next
        # arrival closes the open interval at its query time.
        revived.observe(1200, {"scats": 2, "bus": 1})
        assert revived.intervals["scats"] == [(300, 600), (900, 1200)]
        assert not revived.is_degraded("scats")

    def test_state_dict_round_trip_preserves_silent_streak(self):
        manager = DegradationManager(threshold=3)
        manager.observe(300, {"scats": 0, "bus": 1})
        manager.observe(600, {"scats": 0, "bus": 1})
        assert not manager.is_degraded("scats")

        revived = DegradationManager(threshold=3)
        revived.load_state_dict(manager.state_dict())
        # One more silent step after restore completes the streak —
        # exactly as it would have without the restart.
        degraded = revived.observe(900, {"scats": 0, "bus": 1})
        assert degraded == frozenset({"scats"})
        assert revived.intervals["scats"] == [(900, None)]

    def test_state_dict_is_json_able(self):
        import json

        manager = DegradationManager(threshold=1)
        manager.observe(300, {"scats": 0, "bus": 0})
        state = json.loads(json.dumps(manager.state_dict()))
        revived = DegradationManager(threshold=1)
        revived.load_state_dict(state)
        assert revived.state_dict() == manager.state_dict()
