"""Tests for the integrated urban-traffic system pipeline."""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, SystemReport, UrbanTrafficSystem


@pytest.fixture(scope="module")
def scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=2,
            rows=12,
            cols=12,
            n_intersections=40,
            n_buses=50,
            n_lines=8,
            unreliable_fraction=0.15,
            n_incidents=6,
            incident_window=(0, 1800),
        )
    )


@pytest.fixture(scope="module")
def report(scenario):
    system = UrbanTrafficSystem(
        scenario,
        SystemConfig(
            window=600, step=300, adaptive=True, noisy_variant="crowd",
            n_participants=30, seed=2,
        ),
    )
    return system.run(0, 1800)


class TestUrbanTrafficSystem:
    def test_all_regions_have_engines(self, scenario):
        system = UrbanTrafficSystem(scenario)
        assert set(system.engines) == {"central", "north", "west", "south"}

    def test_single_engine_mode(self, scenario):
        system = UrbanTrafficSystem(
            scenario, SystemConfig(distribute_by_region=False,
                                   crowd_enabled=False)
        )
        assert set(system.engines) == {"city"}

    def test_run_produces_recognition_logs(self, report):
        assert set(report.logs) == {"central", "north", "west", "south"}
        for log in report.logs.values():
            assert len(log.snapshots) == 6  # 1800 / 300

    def test_mean_recognition_time_positive(self, report):
        assert report.mean_recognition_time > 0.0

    def test_unreliable_buses_create_disagreements(self, report):
        # 15% of buses report a stuck congestion bit: the system must
        # surface source disagreements.
        assert report.console.counts().get("source disagreement", 0) > 0

    def test_crowd_resolves_disagreements(self, report):
        assert report.crowd_resolutions > 0
        assert report.console.counts().get("crowd resolution", 0) == (
            report.crowd_resolutions
        )

    def test_flow_estimates_cover_city(self, scenario, report):
        assert set(report.flow_estimates) == set(
            scenario.network.graph.nodes
        )

    def test_crowd_disabled_leaves_unresolved(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(crowd_enabled=False, seed=2),
        )
        report = system.run(0, 900)
        assert report.crowd_resolutions == 0
        if report.console.counts().get("source disagreement"):
            assert report.crowd_unresolved > 0

    def test_render_city_map(self, scenario):
        system = UrbanTrafficSystem(
            scenario, SystemConfig(crowd_enabled=False)
        )
        rendered = system.render_city_map(900)
        assert "low" in rendered and "high" in rendered
        assert len(rendered.split("\n")) > 10

    def test_total_occurrences_deduplicates(self, report):
        # agree events recur across overlapping windows; totals count
        # each (key, time) once.
        total = report.total_occurrences("agree")
        raw = sum(
            len(s.all_occurrences("agree"))
            for log in report.logs.values()
            for s in log.snapshots
        )
        assert 0 < total <= raw

    def test_report_empty_logs_mean(self):
        report = SystemReport(logs={}, console=None)
        assert report.mean_recognition_time == 0.0


class TestAdaptationEffect:
    def test_adaptive_discards_unreliable_buses_eventually(self, scenario):
        # Under rule-set (5) the stuck buses become noisy; their later
        # reports are discarded, so adaptive recognition produces fewer
        # distinct bus-congestion episodes than static recognition.
        static = UrbanTrafficSystem(
            scenario,
            SystemConfig(adaptive=False, crowd_enabled=False, seed=2),
        ).run(0, 1800)
        adaptive = UrbanTrafficSystem(
            scenario,
            SystemConfig(adaptive=True, noisy_variant="pessimistic",
                         crowd_enabled=False, seed=2),
        ).run(0, 1800)
        static_alerts = static.console.counts().get("bus congestion", 0)
        adaptive_alerts = adaptive.console.counts().get("bus congestion", 0)
        assert adaptive_alerts <= static_alerts
