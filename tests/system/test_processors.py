"""Tests for the Streams embeddings of RTEC and crowdsourcing."""

import pytest

from repro.core import RTEC
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.crowd import (
    CrowdsourcingComponent,
    Participant,
    QueryExecutionEngine,
)
from repro.dublin import DublinScenario, ScenarioConfig, stream_items
from repro.streams import Collect, Process, Source, StreamRuntime, Topology
from repro.system import (
    CrowdsourcingProcessor,
    FluentFeedbackProcessor,
    RtecProcessor,
)


@pytest.fixture(scope="module")
def scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=7,
            rows=10,
            cols=10,
            n_intersections=25,
            n_buses=40,
            n_lines=6,
            unreliable_fraction=0.2,
            n_incidents=4,
            incident_window=(0, 1200),
        )
    )


def _engine(scenario, adaptive=True):
    return RTEC(
        build_traffic_definitions(
            scenario.topology, adaptive=adaptive, noisy_variant="crowd"
        ),
        window=600,
        step=300,
        params=default_traffic_params(),
    )


class TestRtecProcessor:
    def test_recognises_inside_streams_topology(self, scenario):
        data = scenario.generate(0, 1200)
        topo = Topology()
        topo.add_source(Source("dublin", stream_items(data)))
        rtec = RtecProcessor(_engine(scenario))
        topo.add_process(
            Process("cep", input="dublin", processors=[rtec], output="ce")
        )
        StreamRuntime(topo).run()
        rtec.flush(1200)
        assert len(rtec.log.snapshots) >= 3
        ce_types = {item["@type"] for item in topo.queues["ce"]}
        assert "busCongestion" in ce_types or "sourceDisagreement" in ce_types

    def test_emits_episode_items(self, scenario):
        data = scenario.generate(0, 900)
        rtec = RtecProcessor(_engine(scenario))
        out = []
        for item in stream_items(data):
            out.extend(rtec.process(item) or [])
        out.extend(rtec.flush(900))
        episodes = [i for i in out if i.get("episode")]
        assert episodes
        assert all("key" in i and "@time" in i for i in episodes)

    def test_flush_runs_remaining_queries(self, scenario):
        rtec = RtecProcessor(_engine(scenario))
        assert rtec.log.snapshots == []
        rtec.flush(900)
        assert [s.query_time for s in rtec.log.snapshots] == [300, 600, 900]


class TestCrowdsourcingProcessor:
    def _processor(self, scenario):
        engine = QueryExecutionEngine(seed=1)
        int_id = scenario.topology.ids()[0]
        lon, lat = scenario.topology.location(int_id)
        for i in range(4):
            engine.register(
                Participant(f"p{i}", 0.05, lon=lon, lat=lat)
            )
        component = CrowdsourcingComponent(engine)
        return CrowdsourcingProcessor(
            component,
            locate=scenario.topology.location,
            truth_lookup=lambda i, t: "congestion",
        ), int_id

    def test_resolves_disagreement_items(self, scenario):
        processor, int_id = self._processor(scenario)
        item = {
            "@type": "sourceDisagreement",
            "@time": 600,
            "key": (int_id,),
            "episode": True,
        }
        result = processor.process(item)
        assert result is not None
        assert result["@type"] == "crowd"
        assert result["value"] == "positive"
        assert result["intersection"] == int_id

    def test_ignores_other_items(self, scenario):
        processor, _ = self._processor(scenario)
        assert processor.process({"@type": "busCongestion", "@time": 1}) is None


class TestFluentFeedbackProcessor:
    def test_feeds_crowd_events_back(self, scenario):
        engine = _engine(scenario)
        feedback = FluentFeedbackProcessor(engine)
        int_id = scenario.topology.ids()[0]
        item = {
            "@type": "crowd",
            "@time": 100,
            "@arrival": 100,
            "intersection": int_id,
            "lon": 0.0,
            "lat": 0.0,
            "value": "negative",
            "label": "free_flow",
            "confidence": 0.99,
        }
        assert feedback.process(dict(item)) is not None
        snapshot = engine.query(300)
        # The crowd event is visible to the engine's window.
        assert snapshot.n_events == 1
