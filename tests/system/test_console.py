"""Tests for the operator console."""

from repro.system import OperatorConsole


class TestOperatorConsole:
    def test_notify_records(self):
        console = OperatorConsole()
        alert = console.notify(90, "bus congestion", "SCATS0001", "hello",
                               region="north")
        assert console.alerts == [alert]

    def test_format(self):
        console = OperatorConsole()
        alert = console.notify(3723, "scats congestion", "SCATS0002",
                               "sensors agree", region="west")
        line = alert.format()
        assert line.startswith("01:02:03")
        assert "[west]" in line
        assert "SCATS0002" in line
        assert "sensors agree" in line

    def test_format_without_region(self):
        console = OperatorConsole()
        alert = console.notify(0, "crowd resolution", "X", "msg")
        assert "[" not in alert.format().split("CROWD")[0]

    def test_of_kind_and_counts(self):
        console = OperatorConsole()
        console.notify(1, "a", "x", "m")
        console.notify(2, "a", "y", "m")
        console.notify(3, "b", "z", "m")
        assert len(console.of_kind("a")) == 2
        assert console.counts() == {"a": 2, "b": 1}

    def test_render_sorted_and_limited(self):
        console = OperatorConsole()
        console.notify(30, "late", "x", "m")
        console.notify(10, "early", "y", "m")
        rendered = console.render()
        assert rendered.index("EARLY") < rendered.index("LATE")
        limited = console.render(limit=1)
        assert "EARLY" not in limited
        assert "LATE" in limited

    def test_render_summary(self):
        console = OperatorConsole()
        console.notify(1, "a", "x", "m")
        summary = console.render_summary()
        assert "a" in summary
        assert "total" in summary
