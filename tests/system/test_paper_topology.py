"""Tests for the Section 3 data-flow graph builder."""

import pytest

from repro.dublin import REGIONS, DublinScenario, ScenarioConfig
from repro.streams import StreamRuntime
from repro.system import build_paper_topology


@pytest.fixture(scope="module")
def built():
    scenario = DublinScenario(
        ScenarioConfig(
            seed=47,
            rows=10,
            cols=10,
            n_intersections=25,
            n_buses=40,
            n_lines=6,
            unreliable_fraction=0.2,
            n_incidents=4,
            incident_window=(0, 1200),
        )
    )
    data = scenario.generate(0, 1200)
    paper = build_paper_topology(
        scenario, data, window=600, step=300, n_participants=20, seed=47
    )
    stats = StreamRuntime(paper.topology).run()
    paper.flush(1200)
    return scenario, data, paper, stats


class TestTopologyShape:
    def test_one_bus_stream_four_scats_streams(self, built):
        _, _, paper, _ = built
        sources = set(paper.topology.sources)
        assert sources == {"buses"} | {f"scats-{r}" for r in REGIONS}

    def test_one_cep_process_per_region(self, built):
        _, _, paper, _ = built
        for region in REGIONS:
            assert f"cep-{region}" in paper.topology.processes
        assert "crowdsourcing" in paper.topology.processes

    def test_traffic_model_registered_as_service(self, built):
        _, _, paper, _ = built
        assert paper.topology.services.lookup("traffic-model") is (
            paper.flow_estimator
        )


class TestTopologyExecution:
    def test_all_items_ingested(self, built):
        _, data, _, stats = built
        expected = len(data.facts) + len(data.events)
        assert stats.items_ingested == expected

    def test_bus_items_partitioned_exactly_once(self, built):
        _, data, paper, _ = built
        moves = sum(1 for e in data.events if e.type == "move")
        consumed = 0
        for region in REGIONS:
            process = paper.topology.processes[f"bus-intake-{region}"]
            consumed += process.produced
        # Every move + gps pair passes exactly one region filter.
        assert consumed == 2 * moves

    def test_every_region_engine_recognised(self, built):
        _, _, paper, _ = built
        for region, processor in paper.rtec_processors.items():
            assert [s.query_time for s in processor.log.snapshots] == [
                300, 600, 900, 1200,
            ], region

    def test_ces_flow_to_queue(self, built):
        _, _, paper, _ = built
        ce_queue = paper.topology.queues["complex-events"]
        assert len(ce_queue) > 0
        types = {item["@type"] for item in ce_queue}
        assert "busCongestion" in types or "sourceDisagreement" in types

    def test_crowd_answers_feed_back(self, built):
        _, _, paper, _ = built
        answers = paper.topology.queues["crowd-answers"].snapshot()
        if answers:  # disagreements occurred
            assert paper.crowd.outcomes
            assert all(item["@type"] == "crowd" for item in answers)

    def test_traffic_model_service_fed(self, built):
        _, data, paper, _ = built
        has_scats = any(e.type == "traffic" for e in data.events)
        if has_scats:
            assert paper.flow_estimator.active_observations(1200)
            estimates = paper.flow_estimator.estimate(1200)
            assert estimates is not None
