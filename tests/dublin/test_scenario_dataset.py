"""Tests for scenario assembly, region split and dataset round-trip."""

import pytest

from repro.dublin import (
    REGIONS,
    DublinScenario,
    ScenarioConfig,
    event_to_item,
    fact_to_item,
    item_to_event,
    item_to_fact,
    read_jsonl,
    stream_items,
    write_jsonl,
)


@pytest.fixture(scope="module")
def scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=11,
            rows=10,
            cols=10,
            n_intersections=25,
            n_buses=30,
            n_lines=6,
            unreliable_fraction=0.1,
            incident_window=(0, 1800),
        )
    )


@pytest.fixture(scope="module")
def data(scenario):
    return scenario.generate(0, 900)


class TestDublinScenario:
    def test_stream_not_empty(self, data):
        assert data.n_sdes > 500
        counts = data.counts_by_type()
        assert counts["move"] > 0
        assert counts["traffic"] > 0

    def test_stream_sorted_by_time(self, data):
        times = [e.time for e in data.events]
        assert times == sorted(times)

    def test_sde_rate(self, data):
        assert data.sde_rate() == pytest.approx(data.n_sdes / 900)

    def test_every_move_has_gps_fact(self, data):
        facts = {(f.key[0], f.time) for f in data.facts}
        for ev in data.events:
            if ev.type == "move":
                assert (ev["bus"], ev.time) in facts

    def test_deterministic(self):
        cfg = ScenarioConfig(seed=5, rows=8, cols=8, n_intersections=10,
                             n_buses=10, n_lines=3)
        a = DublinScenario(cfg).generate(0, 600)
        b = DublinScenario(cfg).generate(0, 600)
        assert [e.payload for e in a.events] == [e.payload for e in b.events]

    def test_split_by_region_partitions_events(self, scenario, data):
        split = scenario.split_by_region(data)
        assert set(split) == set(REGIONS)
        total = sum(len(evs) for evs, _ in split.values())
        assert total == data.n_sdes

    def test_split_keeps_gps_with_moves(self, scenario, data):
        split = scenario.split_by_region(data)
        for region, (events, facts) in split.items():
            move_keys = {
                (e["bus"], e.time) for e in events if e.type == "move"
            }
            fact_keys = {(f.key[0], f.time) for f in facts}
            assert fact_keys == move_keys

    def test_traffic_events_follow_intersection_region(self, scenario, data):
        split = scenario.split_by_region(data)
        for region, (events, _) in split.items():
            for ev in events:
                if ev.type == "traffic":
                    lon, lat = scenario.topology.location(ev["intersection"])
                    assert scenario.network.region_of(lon, lat) == region


class TestDatasetAdapters:
    def test_event_item_roundtrip(self, data):
        ev = data.events[0]
        again = item_to_event(event_to_item(ev))
        assert again.type == ev.type
        assert again.time == ev.time
        assert again.arrival == ev.arrival
        assert dict(again.payload) == dict(ev.payload)

    def test_fact_item_roundtrip(self, data):
        fact = data.facts[0]
        again = item_to_fact(fact_to_item(fact))
        assert again.name == fact.name
        assert again.key == fact.key
        assert dict(again.value) == dict(fact.value)
        assert again.time == fact.time

    def test_item_to_fact_rejects_events(self, data):
        with pytest.raises(ValueError, match="fluent"):
            item_to_fact(event_to_item(data.events[0]))

    def test_stream_items_sorted_by_arrival(self, data):
        items = list(stream_items(data))
        arrivals = [i.get("@arrival", i["@time"]) for i in items]
        assert arrivals == sorted(arrivals)
        assert len(items) == len(data.events) + len(data.facts)


class TestJsonlRoundTrip:
    def test_write_read(self, data, tmp_path):
        path = tmp_path / "scenario.jsonl"
        written = write_jsonl(path, data)
        assert written == len(data.events) + len(data.facts)
        loaded = read_jsonl(path)
        assert loaded.n_sdes == data.n_sdes
        assert len(loaded.facts) == len(data.facts)
        assert [e.time for e in loaded.events] == [e.time for e in data.events]
        assert {e.type for e in loaded.events} == {
            e.type for e in data.events
        }

    def test_read_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        loaded = read_jsonl(path)
        assert loaded.n_sdes == 0

    def test_payloads_survive(self, data, tmp_path):
        path = tmp_path / "scenario.jsonl"
        write_jsonl(path, data)
        loaded = read_jsonl(path)
        original = {
            (e.type, e.time, e.get("bus"), e.get("sensor")) for e in data.events
        }
        reloaded = {
            (e.type, e.time, e.get("bus"), e.get("sensor"))
            for e in loaded.events
        }
        assert original == reloaded


class TestCsvRoundTrip:
    def test_write_creates_both_files(self, data, tmp_path):
        from repro.dublin import write_csv

        bus_path, scats_path = write_csv(tmp_path / "dataset", data)
        assert bus_path.exists()
        assert scats_path.exists()
        header = bus_path.read_text().splitlines()[0]
        assert header.startswith("time,bus,line,operator")

    def test_round_trip_preserves_stream(self, data, tmp_path):
        from repro.dublin import read_csv, write_csv

        write_csv(tmp_path / "dataset", data)
        loaded = read_csv(tmp_path / "dataset")
        assert loaded.n_sdes == data.n_sdes
        assert len(loaded.facts) == len(data.facts)
        original = sorted(
            (e.type, e.time, e.arrival, e.get("bus"), e.get("sensor"))
            for e in data.events
        )
        reloaded = sorted(
            (e.type, e.time, e.arrival, e.get("bus"), e.get("sensor"))
            for e in loaded.events
        )
        assert original == reloaded

    def test_gps_values_survive(self, data, tmp_path):
        from repro.dublin import read_csv, write_csv

        write_csv(tmp_path / "dataset", data)
        loaded = read_csv(tmp_path / "dataset")
        original = {
            (f.key[0], f.time): (f.value["lon"], f.value["congestion"])
            for f in data.facts
        }
        reloaded = {
            (f.key[0], f.time): (f.value["lon"], f.value["congestion"])
            for f in loaded.facts
        }
        assert reloaded == original

    def test_read_empty_directory(self, tmp_path):
        from repro.dublin import read_csv

        loaded = read_csv(tmp_path)
        assert loaded.n_sdes == 0

    def test_recognition_identical_on_reloaded_csv(self, scenario, data,
                                                   tmp_path):
        from repro.core import RTEC
        from repro.core.traffic import (
            build_traffic_definitions,
            default_traffic_params,
        )
        from repro.dublin import read_csv, write_csv

        write_csv(tmp_path / "dataset", data)
        loaded = read_csv(tmp_path / "dataset")

        def recognise(stream):
            engine = RTEC(
                build_traffic_definitions(scenario.topology),
                window=600, step=300, params=default_traffic_params(),
            )
            engine.feed(stream.events, stream.facts)
            return [s.fluents for s in engine.run(900)]

        assert recognise(data) == recognise(loaded)
