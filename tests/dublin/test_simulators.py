"""Tests for the SCATS and bus stream simulators."""

import pytest

from repro.core.geo import distance_m
from repro.dublin import (
    BusFleetSimulator,
    ScatsSensorSimulator,
    TrafficGroundTruth,
    generate_street_network,
    make_lines,
    place_scats_topology,
)


@pytest.fixture(scope="module")
def city():
    network = generate_street_network(rows=10, cols=10, seed=4)
    topology, node_of = place_scats_topology(
        network, n_intersections=20, seed=4
    )
    ground_truth = TrafficGroundTruth(network, seed=4, n_random_incidents=0)
    return network, topology, node_of, ground_truth


class TestScatsSimulator:
    def _sim(self, city, **kwargs):
        network, topology, node_of, gt = city
        return ScatsSensorSimulator(topology, node_of, gt, **kwargs)

    def test_validation(self, city):
        with pytest.raises(ValueError, match="period"):
            self._sim(city, period=0)
        with pytest.raises(ValueError, match="fault"):
            self._sim(city, fault_rate=1.5)

    def test_reporting_period(self, city):
        sim = self._sim(city, period=360, seed=1)
        events = sorted(sim.events(0, 3600), key=lambda e: e.time)
        by_sensor = {}
        for ev in events:
            key = (ev["intersection"], ev["approach"], ev["sensor"])
            by_sensor.setdefault(key, []).append(ev.time)
        for times in by_sensor.values():
            assert len(times) == 10  # one report per 6 minutes
            gaps = {b - a for a, b in zip(times, times[1:])}
            assert gaps == {360}

    def test_events_within_window(self, city):
        sim = self._sim(city, seed=1)
        events = list(sim.events(500, 2000))
        assert events
        assert all(500 <= ev.time < 2000 for ev in events)

    def test_empty_window(self, city):
        sim = self._sim(city)
        assert list(sim.events(100, 100)) == []

    def test_arrival_delays_bounded(self, city):
        sim = self._sim(city, max_arrival_delay=30, seed=2)
        for ev in sim.events(0, 1800):
            assert 0 <= ev.arrival - ev.time <= 30

    def test_payload_schema(self, city):
        sim = self._sim(city, seed=1)
        ev = next(iter(sim.events(0, 720)))
        assert set(ev.payload) == {
            "intersection", "approach", "sensor", "density", "flow",
        }
        assert ev["density"] >= 0
        assert ev["flow"] >= 0

    def test_readings_track_ground_truth(self, city):
        network, topology, node_of, gt = city
        sim = ScatsSensorSimulator(
            topology, node_of, gt, density_noise=0.5, flow_noise=5.0, seed=1
        )
        events = list(sim.events(0, 7200))
        errors = []
        for ev in events:
            node = node_of[ev["intersection"]]
            errors.append(abs(ev["density"] - gt.density(node, ev.time)))
        # Mediator aggregation + small noise + lane bias: mean error
        # stays within a few veh/km.
        assert sum(errors) / len(errors) < 8.0

    def test_faulty_sensors_stuck(self, city):
        sim = self._sim(city, fault_rate=0.3, seed=5)
        faulty = sim.faulty_sensors()
        assert faulty
        readings = {}
        for ev in sim.events(0, 3600):
            key = (ev["intersection"], ev["approach"], ev["sensor"])
            if key in faulty:
                readings.setdefault(key, set()).add(
                    (ev["density"], ev["flow"])
                )
        for values in readings.values():
            assert len(values) == 1  # stuck at one reading

    def test_deterministic(self, city):
        a = [e.payload for e in self._sim(city, seed=9).events(0, 1800)]
        b = [e.payload for e in self._sim(city, seed=9).events(0, 1800)]
        assert a == b

    def test_sensor_count(self, city):
        network, topology, node_of, gt = city
        sim = self._sim(city)
        assert sim.n_sensors == sum(
            len(topology.sensors_of(i)) for i in topology.ids()
        )


class TestBusFleetSimulator:
    def _sim(self, city, **kwargs):
        network, topology, node_of, gt = city
        lines = make_lines(network, 5, seed=4)
        defaults = dict(n_buses=20, seed=4)
        defaults.update(kwargs)
        return BusFleetSimulator(network, gt, lines, **defaults)

    def test_validation(self, city):
        network, topology, node_of, gt = city
        lines = make_lines(network, 3, seed=4)
        with pytest.raises(ValueError, match="line"):
            BusFleetSimulator(network, gt, [], n_buses=5)
        with pytest.raises(ValueError, match="bus"):
            BusFleetSimulator(network, gt, lines, n_buses=0)
        with pytest.raises(ValueError, match="fraction"):
            BusFleetSimulator(network, gt, lines, unreliable_fraction=2.0)
        with pytest.raises(ValueError, match="mode"):
            BusFleetSimulator(network, gt, lines, unreliable_mode="weird")
        with pytest.raises(ValueError, match="period"):
            BusFleetSimulator(network, gt, lines, emission_period=(30, 20))

    def test_emission_cadence(self, city):
        sim = self._sim(city)
        times = {}
        for move, _ in sim.events(0, 1800):
            times.setdefault(move["bus"], []).append(move.time)
        for bus_times in times.values():
            gaps = [b - a for a, b in zip(bus_times, bus_times[1:])]
            assert gaps, "every bus should emit repeatedly"
            assert all(20 <= g <= 30 for g in gaps)

    def test_move_and_gps_paired(self, city):
        sim = self._sim(city)
        for move, gps in sim.events(0, 600):
            assert gps.key == (move["bus"],)
            assert gps.time == move.time
            assert gps.arrival == move.arrival

    def test_gps_positions_on_route(self, city):
        network, *_ = city
        sim = self._sim(city)
        for move, gps in sim.events(0, 600):
            nearest = network.nearest_node(gps.value["lon"], gps.value["lat"])
            lon, lat = network.position(nearest)
            # Positions interpolate along edges; they stay within one
            # city block of some junction.
            assert distance_m(gps.value["lon"], gps.value["lat"], lon, lat) < 1500

    def test_delay_nonnegative(self, city):
        sim = self._sim(city)
        assert all(
            move["delay"] >= 0 for move, _ in sim.events(0, 1200)
        )

    def test_unreliable_buses_report_stuck_congestion(self, city):
        sim = self._sim(
            city, unreliable_fraction=0.5,
            unreliable_mode="stuck_congested",
        )
        unreliable = sim.unreliable_buses()
        assert unreliable
        for move, gps in sim.events(0, 1200):
            if move["bus"] in unreliable:
                assert gps.value["congestion"] == 1

    def test_inverted_buses_lie(self, city):
        network, topology, node_of, gt = city
        sim = self._sim(
            city, unreliable_fraction=1.0, unreliable_mode="inverted"
        )
        lies = 0
        for move, gps in sim.events(0, 600):
            node = network.nearest_node(gps.value["lon"], gps.value["lat"])
            # The bit should be the opposite of the truth at the
            # bus's own reference node (which may differ slightly from
            # nearest_node at edges, so only count clear cases).
            truth = gt.is_congested(node, move.time)
            if gps.value["congestion"] == (0 if truth else 1):
                lies += 1
        assert lies > 0

    def test_arrival_delays_mostly_small(self, city):
        sim = self._sim(city, late_fraction=0.1, max_arrival_delay=120)
        delays = [m.arrival - m.time for m, _ in sim.events(0, 1800)]
        assert all(0 <= d <= 120 for d in delays)
        small = sum(1 for d in delays if d <= 5)
        assert small / len(delays) > 0.8

    def test_deterministic(self, city):
        a = [(m.time, m["bus"], m["delay"]) for m, _ in self._sim(city).events(0, 900)]
        b = [(m.time, m["bus"], m["delay"]) for m, _ in self._sim(city).events(0, 900)]
        assert a == b

    def test_make_lines_routes_valid(self, city):
        network, *_ = city
        lines = make_lines(network, 4, seed=1, min_route_len=5)
        assert len(lines) == 4
        for line in lines:
            assert len(line.route) >= 5
            for a, b in zip(line.route, line.route[1:]):
                assert network.graph.has_edge(a, b)

    def test_make_lines_validation(self, city):
        network, *_ = city
        with pytest.raises(ValueError):
            make_lines(network, 0)
