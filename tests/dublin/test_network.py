"""Tests for the procedural street network and SCATS placement."""

import networkx as nx
import pytest

from repro.dublin import (
    DUBLIN_BBOX,
    REGIONS,
    generate_street_network,
    place_scats_topology,
)


@pytest.fixture(scope="module")
def network():
    return generate_street_network(rows=12, cols=16, seed=3)


class TestGenerateStreetNetwork:
    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="3x3"):
            generate_street_network(rows=2, cols=10)
        with pytest.raises(ValueError, match="removal"):
            generate_street_network(removal_rate=0.9)

    def test_connected(self, network):
        assert nx.is_connected(network.graph)

    def test_positions_inside_bbox(self, network):
        lon_min, lat_min, lon_max, lat_max = DUBLIN_BBOX
        margin_lon = (lon_max - lon_min) * 0.05
        margin_lat = (lat_max - lat_min) * 0.05
        for node in network.graph.nodes:
            lon, lat = network.position(node)
            assert lon_min - margin_lon <= lon <= lon_max + margin_lon
            assert lat_min - margin_lat <= lat <= lat_max + margin_lat

    def test_edges_have_lengths(self, network):
        for _, _, data in network.graph.edges(data=True):
            assert data["length_m"] > 0

    def test_deterministic(self):
        a = generate_street_network(rows=8, cols=8, seed=5)
        b = generate_street_network(rows=8, cols=8, seed=5)
        assert sorted(a.graph.nodes) == sorted(b.graph.nodes)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_seed_changes_city(self):
        a = generate_street_network(rows=8, cols=8, seed=5)
        b = generate_street_network(rows=8, cols=8, seed=6)
        assert sorted(a.graph.edges) != sorted(b.graph.edges)

    def test_shortest_path(self, network):
        nodes = sorted(network.graph.nodes)
        path = network.shortest_path(nodes[0], nodes[-1])
        assert path[0] == nodes[0]
        assert path[-1] == nodes[-1]
        for a, b in zip(path, path[1:]):
            assert network.graph.has_edge(a, b)

    def test_nearest_node(self, network):
        node = sorted(network.graph.nodes)[10]
        lon, lat = network.position(node)
        assert network.nearest_node(lon, lat) == node


class TestRegions:
    def test_all_regions_present(self, network):
        seen = {network.region_of_node(n) for n in network.graph.nodes}
        assert seen == set(REGIONS)

    def test_centre_is_central(self, network):
        c_lon, c_lat = network.centre
        assert network.region_of(c_lon, c_lat) == "central"

    def test_compass_regions(self, network):
        lon_min, lat_min, lon_max, lat_max = network.bbox
        c_lon, c_lat = network.centre
        assert network.region_of(c_lon, lat_max) == "north"
        assert network.region_of(lon_min, c_lat) == "west"
        assert network.region_of(lon_max, lat_min) == "south"


class TestPlaceScatsTopology:
    def test_places_requested_count(self, network):
        topo, node_of = place_scats_topology(
            network, n_intersections=50, seed=1
        )
        assert len(topo) == 50
        assert set(node_of) == set(topo.ids())

    def test_capped_at_junction_count(self, network):
        n = network.n_junctions()
        topo, _ = place_scats_topology(
            network, n_intersections=n + 500, seed=1
        )
        assert len(topo) == n

    def test_sensor_counts_in_range(self, network):
        topo, _ = place_scats_topology(
            network, n_intersections=40, sensors_range=(2, 4), seed=1
        )
        for int_id in topo.ids():
            assert 2 <= len(topo.sensors_of(int_id)) <= 4

    def test_unique_junctions(self, network):
        _, node_of = place_scats_topology(network, n_intersections=60, seed=2)
        assert len(set(node_of.values())) == 60

    def test_locations_match_junctions(self, network):
        topo, node_of = place_scats_topology(
            network, n_intersections=10, seed=3
        )
        for int_id in topo.ids():
            assert topo.location(int_id) == network.position(node_of[int_id])

    def test_validates_sensor_range(self, network):
        with pytest.raises(ValueError):
            place_scats_topology(network, sensors_range=(0, 2))
        with pytest.raises(ValueError):
            place_scats_topology(network, sensors_range=(3, 2))

    def test_deterministic(self, network):
        a, _ = place_scats_topology(network, n_intersections=30, seed=7)
        b, _ = place_scats_topology(network, n_intersections=30, seed=7)
        assert a.ids() == b.ids()
        assert all(a.location(i) == b.location(i) for i in a.ids())

    def test_biased_towards_centre(self, network):
        topo, _ = place_scats_topology(network, n_intersections=80, seed=4)
        central = sum(
            1
            for i in topo.ids()
            if network.region_of(*topo.location(i)) == "central"
        )
        # The central window is 1/9 of the bbox area; a uniform draw
        # would land ~9 of 80 there. The bias should clearly beat that.
        assert central >= 12
