"""Tests for the fundamental-diagram ground-truth dynamics."""

import pytest

from repro.dublin import (
    CONGESTION_DENSITY,
    FREE_FLOW_SPEED_KMH,
    JAM_DENSITY_VEH_KM,
    Incident,
    TrafficGroundTruth,
    daily_profile,
    generate_street_network,
    greenshields_flow,
    greenshields_speed,
)


@pytest.fixture(scope="module")
def network():
    return generate_street_network(rows=8, cols=8, seed=2)


class TestGreenshields:
    def test_free_flow_at_zero_density(self):
        assert greenshields_speed(0.0) == FREE_FLOW_SPEED_KMH

    def test_standstill_at_jam(self):
        assert greenshields_speed(JAM_DENSITY_VEH_KM) == 0.0

    def test_flow_zero_at_both_extremes(self):
        assert greenshields_flow(0.0) == 0.0
        assert greenshields_flow(JAM_DENSITY_VEH_KM) == 0.0

    def test_flow_peaks_at_half_jam(self):
        half = JAM_DENSITY_VEH_KM / 2
        assert greenshields_flow(half) > greenshields_flow(half - 20)
        assert greenshields_flow(half) > greenshields_flow(half + 20)

    def test_clamps_out_of_range(self):
        assert greenshields_speed(-5.0) == FREE_FLOW_SPEED_KMH
        assert greenshields_speed(500.0) == 0.0

    def test_congested_branch_has_low_flow_high_density(self):
        # The basis of rule-set (2): on the congested branch density is
        # high while flow drops.
        congested_flow = greenshields_flow(100.0)
        free_flow = greenshields_flow(20.0)
        assert congested_flow < free_flow


class TestDailyProfile:
    def test_rush_hours_peak(self):
        h = 3600
        assert daily_profile(int(8.5 * h)) > daily_profile(12 * h)
        assert daily_profile(int(17.5 * h)) > daily_profile(12 * h)

    def test_night_dip(self):
        h = 3600
        assert daily_profile(int(3.5 * h)) < daily_profile(12 * h)

    def test_wraps_around_midnight(self):
        assert daily_profile(0) == pytest.approx(daily_profile(24 * 3600))


class TestTrafficGroundTruth:
    def test_density_within_physical_bounds(self, network):
        gt = TrafficGroundTruth(network, seed=1)
        for node in list(network.graph.nodes)[:10]:
            for t in (0, 3600 * 8, 3600 * 17, 3600 * 23):
                d = gt.density(node, t)
                assert 0.0 <= d <= JAM_DENSITY_VEH_KM

    def test_deterministic(self, network):
        a = TrafficGroundTruth(network, seed=1)
        b = TrafficGroundTruth(network, seed=1)
        node = next(iter(network.graph.nodes))
        assert a.density(node, 1234) == b.density(node, 1234)
        assert [i.node for i in a.incidents] == [i.node for i in b.incidents]

    def test_centre_busier_than_rim(self, network):
        gt = TrafficGroundTruth(network, seed=1, n_random_incidents=0)
        c_lon, c_lat = network.centre
        centre_node = network.nearest_node(c_lon, c_lat)
        lon_min, lat_min, *_ = network.bbox
        rim_node = network.nearest_node(lon_min, lat_min)
        t = int(8.5 * 3600)
        # Average over phases to remove the per-node wiggle.
        centre = sum(gt.density(centre_node, t + k) for k in range(0, 1800, 300))
        rim = sum(gt.density(rim_node, t + k) for k in range(0, 1800, 300))
        assert centre > rim

    def test_incident_raises_density(self, network):
        node = next(iter(network.graph.nodes))
        incident = Incident(node=node, start=1000, duration=600, severity=80.0)
        gt = TrafficGroundTruth(network, seed=1, incidents=[incident])
        before = gt.density(node, 900)
        during = gt.density(node, 1200)
        after = gt.density(node, 1700)
        assert during > before
        assert during > after

    def test_incident_spills_to_neighbours(self, network):
        node = next(iter(network.graph.nodes))
        neighbour = next(iter(network.graph.neighbors(node)))
        incident = Incident(node=node, start=0, duration=10_000, severity=80.0)
        gt = TrafficGroundTruth(network, seed=1, incidents=[incident])
        no_incident = TrafficGroundTruth(network, seed=1, incidents=[])
        assert gt.density(neighbour, 500) > no_incident.density(neighbour, 500)

    def test_incident_active_window(self):
        incident = Incident(node="x", start=100, duration=50)
        assert not incident.active(99)
        assert incident.active(100)
        assert incident.active(149)
        assert not incident.active(150)

    def test_congestion_classification(self, network):
        node = next(iter(network.graph.nodes))
        incident = Incident(node=node, start=0, duration=10_000, severity=120.0)
        gt = TrafficGroundTruth(network, seed=1, incidents=[incident])
        assert gt.is_congested(node, 500)
        assert gt.congestion_label(node, 500) == "congestion"
        assert gt.density(node, 500) >= CONGESTION_DENSITY

    def test_congested_nodes_lists_incident_site(self, network):
        node = next(iter(network.graph.nodes))
        incident = Incident(node=node, start=0, duration=10_000, severity=120.0)
        gt = TrafficGroundTruth(network, seed=1, incidents=[incident])
        assert node in gt.congested_nodes(500)

    def test_random_incidents_respect_window(self, network):
        gt = TrafficGroundTruth(
            network, seed=3, n_random_incidents=5,
            incident_window=(1000, 2000),
        )
        assert len(gt.incidents) == 5
        for incident in gt.incidents:
            assert 1000 <= incident.start < 2000

    def test_flow_consistent_with_density(self, network):
        gt = TrafficGroundTruth(network, seed=1)
        node = next(iter(network.graph.nodes))
        t = 3600
        assert gt.flow(node, t) == pytest.approx(
            greenshields_flow(gt.density(node, t))
        )
