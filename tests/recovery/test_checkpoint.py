"""Unit tests for the versioned checkpoint store."""

import pytest

from repro.recovery import (
    CheckpointError,
    CheckpointManager,
    NoValidCheckpoint,
)
from repro.streams import CircuitBreaker


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        payload = {"step": 3, "data": list(range(10))}
        info = manager.save(3, payload)
        assert info.step == 3
        assert info.path.exists()
        assert info.size == info.path.stat().st_size
        assert manager.load(info.path) == payload

    def test_load_latest_picks_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for step in (2, 5, 9):
            manager.save(step, {"step": step})
        payload, info, fallbacks = manager.load_latest()
        assert payload == {"step": 9}
        assert info.step == 9
        assert fallbacks == 0

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(NoValidCheckpoint):
            CheckpointManager(tmp_path).load_latest()

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"a": 1})
        leftovers = [
            p for p in tmp_path.iterdir() if not p.name.endswith(".ckpt")
        ]
        assert leftovers == []


class TestValidation:
    def test_corrupted_payload_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(1, {"a": 1})
        data = bytearray(info.path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte: checksum must catch it
        info.path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            manager.load(info.path)

    def test_truncated_file_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(1, {"a": 1})
        data = info.path.read_bytes()
        info.path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            manager.load(info.path)

    def test_bad_magic_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(1, {"a": 1})
        data = info.path.read_bytes()
        info.path.write_bytes(b"NOTACKPT" + data[8:])
        with pytest.raises(CheckpointError):
            manager.load(info.path)

    def test_load_latest_falls_back_over_torn_file(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(2, {"step": 2})
        torn = manager.save(5, {"step": 5})
        torn.path.write_bytes(torn.path.read_bytes()[:40])
        payload, info, fallbacks = manager.load_latest()
        assert payload == {"step": 2}
        assert info.step == 2
        assert fallbacks == 1

    def test_all_torn_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(1, {"a": 1})
        info.path.write_bytes(b"junk")
        with pytest.raises(NoValidCheckpoint):
            manager.load_latest()


class TestRetention:
    def test_prunes_to_retain(self, tmp_path):
        manager = CheckpointManager(tmp_path, retain=2)
        for step in range(1, 6):
            manager.save(step, {"step": step})
        steps = [info.step for info in manager.list()]
        assert steps == [4, 5]

    def test_retain_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, retain=1)


class TestBreakerRoundTrip:
    """Satellite: a CircuitBreaker survives checkpoint save/load with
    its state machine intact."""

    def test_open_breaker_round_trips(self, tmp_path):
        breaker = CircuitBreaker(threshold=2, reset_after_s=100)
        breaker.record_failure(10)
        breaker.record_failure(20)
        assert breaker.is_open

        manager = CheckpointManager(tmp_path)
        info = manager.save(1, {"breaker": breaker})
        revived = manager.load(info.path)["breaker"]

        assert revived.state == CircuitBreaker.OPEN
        assert revived.opened_at == 20
        assert revived.open_intervals == [(20, None)]
        # The revived breaker continues the same cooldown clock.
        assert not revived.allow(119)
        assert revived.allow(120)  # half-open trial
        revived.record_success(121)
        assert revived.state == CircuitBreaker.CLOSED
        assert revived.open_intervals == [(20, 121)]

    def test_half_open_breaker_round_trips(self, tmp_path):
        breaker = CircuitBreaker(threshold=1, reset_after_s=50)
        breaker.record_failure(0)
        assert breaker.allow(50)  # transitions to half-open
        assert breaker.state == CircuitBreaker.HALF_OPEN

        manager = CheckpointManager(tmp_path)
        info = manager.save(1, {"breaker": breaker})
        revived = manager.load(info.path)["breaker"]
        assert revived.state == CircuitBreaker.HALF_OPEN
        revived.record_failure(60)
        assert revived.state == CircuitBreaker.OPEN
        assert revived.opened_at == 60
