"""Crash-recovery parity: kill the pipeline anywhere, resume, and get
byte-identical output.

The contract under test (see ``docs/recovery.md``):

* checkpointing is observation-only — a run with a coordinator
  attached produces exactly the output of one without;
* after a crash at *any* step (including mid-checkpoint-write, leaving
  a torn file), ``resume_run`` restores the newest valid checkpoint,
  replays at most one journal segment, and finishes with the same CE
  intervals, alerts, degradation timeline, crowd ``p_i`` estimates and
  item counters as the uninterrupted run;
* replayed items are counted exactly once: the metrics registry is
  part of the checkpointed graph, so re-applied increments start from
  the checkpointed values.

``recovery.*`` counters legitimately differ between a resumed and an
uninterrupted run (the resumed one restored and replayed); they are
deliberately outside the parity fingerprint.
"""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.faults import CrashInjector
from repro.recovery import (
    resume_run,
    run_resilient,
    run_with_recovery,
)
from repro.system import SystemConfig, UrbanTrafficSystem

SCENARIO = dict(
    seed=3,
    n_buses=12,
    n_lines=3,
    n_intersections=10,
    n_incidents=3,
    incident_window=(0, 3000),
)
CONFIG = dict(
    n_participants=12,
    seed=3,
    checkpoint_interval=3,
    fault_profile="chaos_day",
)
STEPS = 12
END = STEPS * 300


def build_system():
    return UrbanTrafficSystem(
        DublinScenario(ScenarioConfig(**SCENARIO)), SystemConfig(**CONFIG)
    )


def fingerprint(system, report):
    """Everything the run *produced*, serialised for equality checks."""
    ce = {}
    for region, log in report.logs.items():
        seen = set()
        for snap in log.snapshots:
            for name, occs in snap.occurrences.items():
                for occ in occs:
                    seen.add((name, occ.key, occ.time))
        ce[region] = sorted(map(repr, seen))
    counters = report.metrics.get("counters", {})
    return {
        "ce": ce,
        "alerts": [repr(a) for a in report.console.alerts],
        "degraded": repr(report.degraded),
        "p_i": repr(
            sorted(system.crowd.aggregator.error_probabilities.items())
        ),
        "crowd": (
            report.crowd_resolutions,
            report.crowd_unresolved,
            report.crowd_suppressed,
        ),
        "rewards": repr(sorted(report.rewards.items())),
        "flow": repr(sorted(report.flow_estimates.items())),
        # Exactly-once check: replayed work must not double-count.
        "items": {
            k: v
            for k, v in counters.items()
            if k.startswith(("process.", "crowd.", "faults.", "rtec.cache."))
        },
    }


@pytest.fixture(scope="module")
def golden():
    """Fingerprint of the uninterrupted (but checkpointed) run."""
    system = build_system()
    report = system.run(0, END)
    return fingerprint(system, report)


@pytest.mark.chaos
class TestCrashParity:
    def test_checkpointing_is_observation_only(self, golden, tmp_path):
        system = build_system()
        outcome = run_with_recovery(
            system, 0, END, tmp_path, crash=None
        )
        assert not outcome.crashed
        assert fingerprint(system, outcome.report) == golden

    @pytest.mark.parametrize("kill_step", [2, 5, 11])
    def test_kill_and_resume_restores_parity(
        self, golden, tmp_path, kill_step
    ):
        outcome = run_with_recovery(
            build_system(),
            0,
            END,
            tmp_path,
            crash=CrashInjector(at_step=kill_step),
        )
        assert outcome.crashed and outcome.crash_step == kill_step

        system, resumed = resume_run(tmp_path)
        assert not resumed.crashed
        revived = fingerprint(system, resumed.report)
        for key, value in golden.items():
            assert revived[key] == value, f"kill@{kill_step}: {key} diverged"

        counters = resumed.report.metrics["counters"]
        assert counters.get("recovery.restore.count") == 1
        # At most one journal segment is replayed: never more steps
        # than fit between two checkpoints.
        assert (
            counters.get("recovery.replay.steps", 0)
            <= CONFIG["checkpoint_interval"]
        )

    def test_seeded_kill_step_is_deterministic(self, tmp_path):
        drawn = CrashInjector(seed=7, step_range=(1, STEPS))
        again = CrashInjector(seed=7, step_range=(1, STEPS))
        assert drawn.at_step == again.at_step  # seeded draw is stable
        outcome = run_with_recovery(
            build_system(), 0, END, tmp_path, crash=drawn
        )
        assert outcome.crashed
        assert outcome.crash_step == drawn.at_step

    def test_torn_checkpoint_falls_back_with_parity(self, golden, tmp_path):
        outcome = run_with_recovery(
            build_system(),
            0,
            END,
            tmp_path,
            crash=CrashInjector(at_step=6, phase="checkpoint"),
        )
        assert outcome.crashed and outcome.crash_phase == "checkpoint"

        system, resumed = resume_run(tmp_path)
        assert not resumed.crashed
        assert fingerprint(system, resumed.report) == golden
        counters = resumed.report.metrics["counters"]
        # The torn file was skipped; restore fell back one checkpoint.
        assert counters.get("recovery.restore.fallbacks") == 1

    def test_chained_crashes_run_resilient(self, golden, tmp_path):
        system, report = run_resilient(
            build_system(),
            0,
            END,
            tmp_path,
            crashes=[
                CrashInjector(at_step=4),
                CrashInjector(at_step=9),
                CrashInjector(at_step=9, phase="checkpoint"),
            ],
        )
        assert fingerprint(system, report) == golden
        # recovery.* counters are part of the checkpointed graph, so a
        # restore whose attempt dies before its first checkpoint rolls
        # its own increment back — the exact count is not a contract.
        assert report.metrics["counters"]["recovery.restore.count"] >= 1
