"""Unit tests for the write-ahead journal."""

import pytest

from repro.recovery import WriteAheadJournal


def records(n, base=0):
    return [{"kind": "step", "step": base + i} for i in range(n)]


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        for record in records(5):
            journal.append(record)
        journal.close()
        assert journal.read_segment(0) == records(5)

    def test_append_requires_open_segment(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        with pytest.raises(RuntimeError):
            journal.append({"kind": "step"})

    def test_missing_segment_reads_empty(self, tmp_path):
        assert WriteAheadJournal(tmp_path).read_segment(7) == []

    def test_segments_are_independent(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        journal.append({"kind": "step", "step": 1})
        journal.open(5)
        journal.append({"kind": "step", "step": 6})
        journal.close()
        assert journal.read_segment(0) == [{"kind": "step", "step": 1}]
        assert journal.read_segment(5) == [{"kind": "step", "step": 6}]


class TestTornTail:
    def test_truncated_last_line_is_dropped(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        for record in records(3):
            journal.append(record)
        journal.close()
        path = journal.segment_path(0)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # crash mid-append: no newline
        assert journal.read_segment(0) == records(2)

    def test_corrupted_line_stops_the_scan(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        for record in records(3):
            journal.append(record)
        journal.close()
        path = journal.segment_path(0)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = "deadbeef0000 {\"not\": \"the checksummed text\"}\n"
        path.write_text("".join(lines))
        # Everything *before* the corrupt line is intact and returned.
        assert journal.read_segment(0) == records(1)

    def test_garbage_line_without_separator(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        journal.append({"kind": "step", "step": 1})
        journal.close()
        path = journal.segment_path(0)
        path.write_text(path.read_text() + "garbage-no-separator\n")
        assert journal.read_segment(0) == [{"kind": "step", "step": 1}]


class TestSegmentLifecycle:
    def test_fresh_open_archives_previous_segment(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        journal.append({"kind": "step", "step": 1})
        journal.open(0, fresh=True)
        journal.append({"kind": "step", "step": 1})
        journal.open(0, fresh=True)
        journal.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "journal-00000000.wal",
            "journal-00000000.wal.replayed-0",
            "journal-00000000.wal.replayed-1",
        ]
        # The live segment restarted empty; archives kept the records.
        assert journal.read_segment(0) == []

    def test_prune_drops_segments_below_base(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        for base in (0, 5, 10):
            journal.open(base)
            journal.append({"kind": "step", "step": base + 1})
        journal.open(0, fresh=True)  # leave an archive behind too
        journal.close()
        journal.prune(5)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["journal-00000005.wal", "journal-00000010.wal"]
