"""Figure 2: why the working memory overlaps (window > step).

With ``window == step`` each SDE gets exactly one chance: the single
query whose window covers its occurrence time.  If its arrival is
delayed past that query it is never considered.  With
``window > step`` later queries still cover the occurrence time, so a
bounded delay only postpones recognition — it cannot lose it.  Both
sides are driven by the same delay injector the fault profiles use.
"""

import pytest

from repro.core import RTEC
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.faults import FaultInjector, StreamFaults
from tests.core.helpers import CONGESTED, make_topology, traffic_event

HORIZON = 3600


def congested_stream():
    """Both sensors of I1 congested over t=1200..1440.

    The spell *starts exactly on a query boundary* (t=1200 with
    step=300): with ``window == step`` that first SDE's only covering
    window is ``(900, 1200]``, so **any** positive arrival delay
    pushes it past its one chance — the loss below is deterministic,
    not a lucky seed."""
    return [
        traffic_event(t, intersection="I1", sensor=sensor, **CONGESTED)
        for t in range(1200, 1470, 30)
        for sensor in ("S1", "S2")
    ]


def recognised_congestion(events, *, window, step):
    """The settled ``scatsCongestion`` verdict as a set of
    ``(sensor_key, second)`` samples.

    Each query contributes only the chunk about to slide out of the
    working memory — its final say about those seconds (the same
    settledness construction as the chaos parity test)."""
    engine = RTEC(
        build_traffic_definitions(make_topology(), include_trends=False),
        window=window,
        step=step,
        params=default_traffic_params(),
    )
    engine.feed(events)
    keys = (("I1", "A", "S1"), ("I1", "A", "S2"))
    held = set()
    q = step
    while q <= HORIZON:
        snapshot = engine.query(q)
        lo = max(q - window, 0)
        hi = q if q == HORIZON else lo + step
        for key in keys:
            for t in range(lo + 1, hi + 1, 10):
                if snapshot.holds_at("scatsCongestion", key, t):
                    held.add((key, t))
        q += step
    return held


def delayed(events, max_delay_s, seed=4):
    injector = FaultInjector(
        StreamFaults(delay_rate=1.0, max_delay_s=max_delay_s),
        seed=seed,
        feed="scats",
    )
    return injector.events(events)


@pytest.mark.chaos
class TestDelayTolerance:
    def test_clean_stream_recognised_either_way(self):
        events = congested_stream()
        for window, step in ((300, 300), (900, 300)):
            assert recognised_congestion(events, window=window, step=step)

    def test_window_equals_step_loses_delayed_sdes(self):
        """An SDE delayed past its only covering query is gone."""
        events = congested_stream()
        clean = recognised_congestion(events, window=300, step=300)
        shaken = recognised_congestion(
            delayed(events, max_delay_s=500), window=300, step=300
        )
        assert shaken < clean  # strictly fewer congestion verdicts

    def test_window_over_step_recovers_the_same_delays(self):
        """The identical faulty stream, re-run with an overlapping
        working memory: every delayed SDE lands in a later window that
        still covers its occurrence time (delay ≤ window - step)."""
        events = congested_stream()
        clean = recognised_congestion(events, window=900, step=300)
        shaken = recognised_congestion(
            delayed(events, max_delay_s=500), window=900, step=300
        )
        assert shaken == clean

    def test_delay_beyond_tolerance_still_loses(self):
        """The guarantee is exactly window - step: delays beyond it
        can push an SDE past every covering query."""
        events = congested_stream()
        clean = recognised_congestion(events, window=900, step=300)
        shaken = recognised_congestion(
            delayed(events, max_delay_s=2000, seed=6),
            window=900,
            step=300,
        )
        assert shaken != clean
