"""Chaos parity: bounded delay + window > step ⇒ identical recognition.

The working memory's core guarantee (paper, Figure 2): with
``window > step``, an SDE whose arrival is delayed by no more than
``window - step`` (minus the rule's own time span) is still inside
some window that covers its occurrence time, so once results settle
the recognised CEs are **byte-identical** to the fault-free run.

Parameters are chosen so the guarantee holds for every rule in the
traffic suite: window 1200s, step 300s, injected delay ≤ 600s, and
the widest rule span in the suite is 300s (``citm.window``), so
``delay ≤ window - step - span`` for every definition.
"""

import json

import pytest

from repro.core import RTEC
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.faults import FaultInjector, StreamFaults, get_profile
from tests.core.helpers import (
    CONGESTED,
    FREE,
    bus_report,
    make_topology,
    traffic_event,
)

WINDOW = 1200
STEP = 300
MAX_DELAY = 600  # <= WINDOW - STEP - max rule span (300s)
HORIZON = 7200


def sde_stream():
    """A deterministic stream with congestion spells on two feeds."""
    events, facts = [], []
    for t in range(30, HORIZON, 30):
        # I1 congested during [1800, 3600); I2 always free.
        readings = CONGESTED if 1800 <= t < 3600 else FREE
        for sensor in ("S1", "S2"):
            events.append(
                traffic_event(t, intersection="I1", sensor=sensor, **readings)
            )
            events.append(
                traffic_event(t, intersection="I2", sensor=sensor, **FREE)
            )
    for t in range(60, HORIZON, 60):
        congested = 1 if 1800 <= t < 3600 else 0
        for bus, delay in (("B1", 120), ("B2", 240)):
            move, gps = bus_report(
                t, bus=bus, congestion=congested,
                delay=delay if congested else 0,
            )
            events.append(move)
            facts.append(gps)
    return events, facts


def _merge(pieces):
    """Merge clipped interval pieces back into maximal episodes."""
    merged = []
    for start, end in sorted(
        pieces, key=lambda p: (p[0], p[1] is None, p[1])
    ):
        if merged and merged[-1][1] is not None and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            if end is None or end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def settled_output(events, facts, *, window, step):
    """Canonical *settled* recognition, serialised to bytes.

    At query ``q`` the chunk ``(q - window, q - window + step]`` is
    about to slide out of the working memory forever — and with
    injected delay ≤ window - step every SDE of that chunk has arrived
    by ``q``, so the engine's verdict about it is final.  The settled
    output is the union of those expiring chunks (plus the last
    query's whole window, by which time the stream is exhausted),
    merged back into maximal episodes, together with the union of
    recognised occurrences.  Transient verdicts about not-yet-settled
    chunks — where a delayed SDE legitimately hasn't shown up yet —
    are exactly what this construction excludes.
    """
    topology = make_topology(2)
    engine = RTEC(
        build_traffic_definitions(topology, adaptive=False),
        window=window,
        step=step,
        params=default_traffic_params(),
    )
    engine.feed(events, facts)
    occurrences = set()
    pieces: dict = {}
    last_q = ((HORIZON + window) // step) * step
    q = step
    while q <= last_q:
        snapshot = engine.query(q)
        for name, occs in snapshot.occurrences.items():
            for occ in occs:
                occurrences.add((name, occ.key, occ.time))
        lo = q - window
        hi = q if q == last_q else lo + step
        for name, by_key in snapshot.fluents.items():
            for key, intervals in by_key.items():
                for start, end in intervals:
                    piece_start = max(start, lo)
                    if end is None:
                        piece_end = None if q == last_q else hi
                    else:
                        piece_end = min(end, hi)
                    if piece_end is not None and piece_start >= piece_end:
                        continue
                    pieces.setdefault((name, key), []).append(
                        (piece_start, piece_end)
                    )
        q += step
    episodes = {
        repr(key): [repr(p) for p in _merge(chunked)]
        for key, chunked in pieces.items()
    }
    return json.dumps(
        {
            "occurrences": sorted(map(repr, occurrences)),
            "episodes": episodes,
        },
        sort_keys=True,
    )


def delay_everything(events, facts, max_delay, seed=13):
    spec = StreamFaults(delay_rate=1.0, max_delay_s=max_delay)
    shaken_events = FaultInjector(spec, seed=seed, feed="scats").events(
        [e for e in events if e.type == "traffic"]
    ) + FaultInjector(spec, seed=seed, feed="bus").events(
        [e for e in events if e.type == "move"]
    )
    shaken_facts = FaultInjector(spec, seed=seed, feed="gps").facts(facts)
    return shaken_events, shaken_facts


@pytest.mark.chaos
class TestChaosParity:
    def test_clean_run_recognises_something(self):
        events, facts = sde_stream()
        settled = settled_output(events, facts, window=WINDOW, step=STEP)
        assert "scatsCongestion" in settled
        assert "delayIncrease" in settled

    def test_bounded_delay_is_invisible_once_settled(self):
        """Delay ≤ window - step - span ⇒ byte-identical recognition."""
        events, facts = sde_stream()
        clean = settled_output(events, facts, window=WINDOW, step=STEP)
        shaken_events, shaken_facts = delay_everything(
            events, facts, MAX_DELAY
        )
        # The injector genuinely delayed arrivals...
        assert any(
            s.arrival > c.arrival
            for c, s in zip(
                [e for e in events if e.type == "traffic"],
                [e for e in shaken_events if e.type == "traffic"],
            )
        )
        chaos = settled_output(
            shaken_events, shaken_facts, window=WINDOW, step=STEP
        )
        assert chaos == clean

    def test_parity_across_seeds(self):
        """The guarantee is structural, not a lucky seed."""
        events, facts = sde_stream()
        clean = settled_output(events, facts, window=WINDOW, step=STEP)
        for seed in (1, 2, 3):
            shaken_events, shaken_facts = delay_everything(
                events, facts, MAX_DELAY, seed=seed
            )
            assert (
                settled_output(
                    shaken_events, shaken_facts, window=WINDOW, step=STEP
                )
                == clean
            )

    def test_bounded_delay_profile_round_trip(self):
        """The shipped ``bounded_delay`` profile honours the same bound."""
        profile = get_profile("bounded_delay")
        assert profile.scats.max_delay_s <= WINDOW - STEP - 300
        assert profile.bus.max_delay_s <= WINDOW - STEP - 300
