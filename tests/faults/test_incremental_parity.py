"""Randomized delayed-arrival parity: incremental vs legacy engine.

The working memory exists for the paper's Figure 2 pathology: SDEs
arriving after later query times have already run.  As long as an
SDE's delay stays below ``window - step`` it is still admitted by some
query window that covers its occurrence time, so recognition *settles*
to the same output an on-time delivery would have produced — and the
incremental engine's cache invalidation must reproduce that settling
exactly.

These tests drive both engines over identical randomly-faulted streams
(``repro.faults`` injectors: delays below ``window - step``, plus
duplicates to stress the multiset output diff) and assert the full
recognition traces are equal, query by query.
"""

import pytest

from repro.faults import FaultInjector, StreamFaults
from tests.golden.record_golden import (
    HORIZON,
    build_engine,
    golden_scenario,
    serialise_snapshot,
)

WINDOW = 1200
STEP = 300

#: Delays stay strictly below window - step: every late SDE is still
#: covered by at least one later query window.
DELAYS = StreamFaults(delay_rate=0.5, max_delay_s=WINDOW - STEP - 1)

#: Delays plus duplicated records (at-least-once delivery).
DELAYS_AND_DUPES = StreamFaults(
    delay_rate=0.4, max_delay_s=WINDOW - STEP - 1, duplicate_rate=0.15
)


def _faulty_stream(seed, spec):
    scenario = golden_scenario()
    data = scenario.generate(0, HORIZON + 600)
    events = FaultInjector(spec, seed=seed, feed="bus").events(data.events)
    facts = FaultInjector(spec, seed=seed, feed="gps").facts(data.facts)
    return scenario, events, facts


def _trace(scenario, events, facts, *, incremental):
    engine = build_engine(
        scenario,
        window=WINDOW,
        step=STEP,
        adaptive=True,
        incremental=incremental,
    )
    engine.feed(events, facts)
    snapshots = list(engine.run(HORIZON))
    return [serialise_snapshot(s) for s in snapshots], snapshots


@pytest.mark.parametrize("seed", [11, 23, 47])
@pytest.mark.parametrize(
    "spec", [DELAYS, DELAYS_AND_DUPES], ids=["delays", "delays+dupes"]
)
def test_randomized_delays_settle_identically(seed, spec):
    scenario, events, facts = _faulty_stream(seed, spec)
    incremental_trace, _ = _trace(scenario, events, facts, incremental=True)
    legacy_trace, _ = _trace(scenario, events, facts, incremental=False)
    assert incremental_trace == legacy_trace


def test_delays_actually_trigger_invalidation():
    """The parity above is only meaningful if late arrivals land inside
    the reuse region: the incremental engine must report cache
    invalidations on the delayed stream."""
    scenario, events, facts = _faulty_stream(11, DELAYS)
    assert any(ev.arrival > ev.time for ev in events)
    _, snapshots = _trace(scenario, events, facts, incremental=True)
    assert sum(s.cache_invalidations for s in snapshots) > 0
    assert sum(s.cache_hits for s in snapshots) > 0
