"""Tests for the deterministic fault injectors."""

import pytest

from repro.core.events import Event, FluentFact
from repro.faults import (
    BOUNDED_DELAY_S,
    CrowdFaults,
    FaultInjector,
    FaultProfile,
    PROFILES,
    StreamFaults,
    faulty_source,
    get_profile,
    inject_scenario,
    list_profiles,
)
from repro.obs import Registry
from repro.streams import Source, item_arrival


def traffic_events(n=50, period=30):
    return [
        Event(
            "traffic", t * period,
            {"intersection": f"I{t % 4}", "approach": "A",
             "sensor": "S1", "density": 20.0 + t, "flow": 900.0},
        )
        for t in range(1, n + 1)
    ]


def gps_facts(n=20, period=60):
    return [
        FluentFact(
            "gps", (f"B{t % 3}",),
            {"lon": -6.26, "lat": 53.35, "congestion": t % 2},
            t * period,
        )
        for t in range(1, n + 1)
    ]


class TestSpecValidation:
    @pytest.mark.parametrize("field", [
        "drop_rate", "delay_rate", "duplicate_rate", "corrupt_rate",
    ])
    def test_rates_bounded(self, field):
        with pytest.raises(ValueError, match=field):
            StreamFaults(**{field: 1.5})

    def test_delay_needs_bound(self):
        with pytest.raises(ValueError, match="max_delay_s"):
            StreamFaults(delay_rate=0.5)

    def test_corrupt_needs_fields(self):
        with pytest.raises(ValueError, match="corrupt_fields"):
            StreamFaults(corrupt_rate=0.5)

    def test_crowd_rates_bounded(self):
        with pytest.raises(ValueError, match="no_response_rate"):
            CrowdFaults(no_response_rate=-0.1)

    def test_active(self):
        assert not StreamFaults().active
        assert StreamFaults(drop_rate=0.1).active
        assert not CrowdFaults().active
        assert CrowdFaults(timeout_rate=0.2).active


class TestDeterminism:
    def test_same_seed_same_faults(self):
        spec = StreamFaults(
            drop_rate=0.2, delay_rate=0.3, max_delay_s=120,
            duplicate_rate=0.1, corrupt_rate=0.2, corrupt_fields=("flow",),
        )
        events = traffic_events()
        a = FaultInjector(spec, seed=7, feed="scats").events(events)
        b = FaultInjector(spec, seed=7, feed="scats").events(events)
        assert a == b

    def test_different_seed_different_faults(self):
        spec = StreamFaults(drop_rate=0.5)
        events = traffic_events()
        a = FaultInjector(spec, seed=1).events(events)
        b = FaultInjector(spec, seed=2).events(events)
        assert a != b

    def test_chunking_does_not_change_faults(self):
        # The RNG walks one draw-set per record, so splitting the
        # stream across calls cannot change any record's fate.
        spec = StreamFaults(drop_rate=0.3, delay_rate=0.3, max_delay_s=60)
        events = traffic_events()
        whole = FaultInjector(spec, seed=3).events(events)
        injector = FaultInjector(spec, seed=3)
        chunked = injector.events(events[:20]) + injector.events(events[20:])
        assert whole == chunked

    def test_feeds_draw_independent_streams(self):
        spec = StreamFaults(drop_rate=0.5)
        events = traffic_events()
        scats = FaultInjector(spec, seed=0, feed="scats").events(events)
        bus = FaultInjector(spec, seed=0, feed="bus").events(events)
        assert scats != bus


class TestFaultKinds:
    def test_drop_all(self):
        metrics = Registry()
        injector = FaultInjector(
            StreamFaults(drop_rate=1.0), feed="scats", metrics=metrics
        )
        assert injector.events(traffic_events(10)) == []
        counters = metrics.counters()
        assert counters["faults.scats.seen"] == 10
        assert counters["faults.scats.dropped"] == 10
        assert "faults.scats.emitted" not in counters

    def test_duplicate_all(self):
        injector = FaultInjector(StreamFaults(duplicate_rate=1.0))
        out = injector.events(traffic_events(5))
        assert len(out) == 10
        assert out[0] == out[1]

    def test_delay_moves_arrival_only(self):
        injector = FaultInjector(
            StreamFaults(delay_rate=1.0, max_delay_s=90)
        )
        events = traffic_events(30)
        out = injector.events(events)
        assert [e.time for e in out] == [e.time for e in events]
        for original, delayed in zip(events, out):
            assert 1 <= delayed.arrival - original.time <= 90

    def test_corruption_flattens_numbers_and_flips_bits(self):
        injector = FaultInjector(
            StreamFaults(corrupt_rate=1.0, corrupt_fields=("flow",))
        )
        out = injector.events(traffic_events(3))
        assert all(e["flow"] == 0.0 for e in out)
        assert all(e["density"] != 0.0 for e in out)  # untouched field

        injector = FaultInjector(
            StreamFaults(corrupt_rate=1.0, corrupt_fields=("congestion",))
        )
        facts = injector.facts(gps_facts(4))
        assert [f.value["congestion"] for f in facts] == [0, 1, 0, 1]

    def test_metrics_cover_every_fault(self):
        metrics = Registry()
        spec = StreamFaults(
            delay_rate=0.5, max_delay_s=60, duplicate_rate=0.5,
            corrupt_rate=0.5, corrupt_fields=("flow",),
        )
        FaultInjector(spec, feed="bus", metrics=metrics).events(
            traffic_events(40)
        )
        counters = metrics.counters()
        for kind in ("seen", "delayed", "duplicated", "corrupted", "emitted"):
            assert counters[f"faults.bus.{kind}"] > 0
        assert metrics.timings()["faults.bus.delay_s"].count > 0


class TestFaultySource:
    def test_injected_delays_reorder_delivery(self):
        items = [
            {"@time": t, "sensor": "S1", "flow": 900.0}
            for t in range(0, 300, 10)
        ]
        source = Source("scats", items)
        shaken = faulty_source(
            source, StreamFaults(delay_rate=0.5, max_delay_s=200), seed=5
        )
        assert shaken.name == "scats"
        arrivals = [item_arrival(item) for item in shaken]
        assert arrivals == sorted(arrivals)  # re-sorted by arrival
        times = [item["@time"] for item in shaken]
        assert times != sorted(times)  # ... which reorders event time


class TestProfiles:
    def test_registry_lists_all(self):
        assert {p.name for p in list_profiles()} == set(PROFILES)
        assert "none" in PROFILES and "chaos_day" in PROFILES

    def test_get_profile_hints_on_typo(self):
        with pytest.raises(ValueError, match="lossy_scats"):
            get_profile("lossy_scat")

    def test_bounded_delay_profile_matches_constant(self):
        profile = get_profile("bounded_delay")
        assert profile.scats.max_delay_s == BOUNDED_DELAY_S
        assert profile.bus.max_delay_s == BOUNDED_DELAY_S

    def test_with_seed_and_to_dict(self):
        profile = get_profile("lossy_scats").with_seed(99)
        assert profile.seed == 99
        spec = profile.to_dict()
        assert spec["scats"]["drop_rate"] == pytest.approx(0.3)

    def test_profiles_active_flags(self):
        assert not PROFILES["none"].active
        assert all(
            PROFILES[name].active for name in PROFILES if name != "none"
        )


class TestInjectScenario:
    class Data:
        pass

    def _data(self):
        import dataclasses

        @dataclasses.dataclass
        class ScenarioLike:
            events: list
            facts: list

        moves = [
            Event("move", t * 60, {"bus": "B1", "line": "L1",
                                   "operator": "O1", "delay": 30})
            for t in range(1, 11)
        ]
        return ScenarioLike(traffic_events(20) + moves, gps_facts(10))

    def test_none_profile_is_identity(self):
        data = self._data()
        out = inject_scenario(data, get_profile("none"))
        assert out.events == data.events
        assert out.facts == data.facts

    def test_blackout_scats_only_kills_traffic(self):
        data = self._data()
        out = inject_scenario(data, get_profile("blackout_scats"))
        assert [e for e in out.events if e.type == "traffic"] == []
        assert len([e for e in out.events if e.type == "move"]) == 10
        assert len(out.facts) == 10

    def test_per_feed_rng_streams_are_stable(self):
        # Removing the whole bus feed must not change which SCATS
        # records get hit: each feed walks its own RNG stream.
        profile = FaultProfile(
            name="drops", scats=StreamFaults(drop_rate=0.4),
            bus=StreamFaults(drop_rate=0.4), seed=11,
        )
        data = self._data()
        mixed = inject_scenario(data, profile)
        scats_only = type(data)(
            [e for e in data.events if e.type == "traffic"], []
        )
        alone = inject_scenario(scats_only, profile)
        assert (
            [e for e in mixed.events if e.type == "traffic"]
            == alone.events
        )
