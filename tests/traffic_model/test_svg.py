"""Tests for the SVG city-map renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.traffic_model import render_city_svg, write_city_svg

POSITIONS = {
    "a": (-6.3, 53.3),
    "b": (-6.2, 53.3),
    "c": (-6.2, 53.4),
}
EDGES = [("a", "b"), ("b", "c")]

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestRenderCitySvg:
    def test_valid_xml_with_network(self):
        root = _parse(render_city_svg(POSITIONS, EDGES))
        lines = root.findall(f".//{SVG_NS}line")
        assert len(lines) == 2

    def test_requires_positions(self):
        with pytest.raises(ValueError):
            render_city_svg({}, [])

    def test_values_drawn_as_coloured_dots(self):
        svg = render_city_svg(
            POSITIONS, EDGES, values={"a": 0.0, "b": 50.0, "c": 100.0}
        )
        root = _parse(svg)
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 3
        fills = {c.get("fill") for c in circles}
        assert len(fills) == 3  # distinct shades along the ramp

    def test_low_green_high_red(self):
        svg = render_city_svg(POSITIONS, [], values={"a": 0.0, "c": 100.0})
        root = _parse(svg)
        circles = {
            (float(c.get("cx")), float(c.get("cy"))): c.get("fill")
            for c in root.findall(f".//{SVG_NS}circle")
        }
        fills = list(circles.values())
        greens = [f for f in fills if f.startswith("#00")]
        reds = [f for f in fills if f.startswith("#ff")]
        assert greens and reds

    def test_sensor_rings(self):
        svg = render_city_svg(POSITIONS, EDGES, sensors=["a", "c", "ghost"])
        root = _parse(svg)
        rings = [
            c for c in root.findall(f".//{SVG_NS}circle")
            if c.get("r") == "4.5"
        ]
        assert len(rings) == 2

    def test_unknown_edge_endpoints_skipped(self):
        svg = render_city_svg(POSITIONS, [("a", "ghost")])
        root = _parse(svg)
        assert root.findall(f".//{SVG_NS}line") == []

    def test_title_rendered(self):
        svg = render_city_svg(POSITIONS, EDGES, title="Dublin flows")
        assert "Dublin flows" in svg

    def test_degenerate_single_point(self):
        svg = render_city_svg({"only": (0.0, 0.0)}, [], values={"only": 5.0})
        assert _parse(svg) is not None

    def test_write_to_file(self, tmp_path):
        path = write_city_svg(tmp_path / "map.svg", POSITIONS, EDGES)
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_deterministic(self):
        a = render_city_svg(POSITIONS, EDGES, values={"a": 1.0})
        b = render_city_svg(POSITIONS, EDGES, values={"a": 1.0})
        assert a == b


class TestEndToEndWithScenario:
    def test_scenario_map(self, tmp_path):
        from repro.dublin import DublinScenario, ScenarioConfig, greenshields_flow

        scenario = DublinScenario(
            ScenarioConfig(seed=3, rows=8, cols=8, n_intersections=15,
                           n_buses=5, n_lines=3)
        )
        network = scenario.network
        values = {
            n: greenshields_flow(scenario.ground_truth.density(n, 3600))
            for n in network.graph.nodes
        }
        path = write_city_svg(
            tmp_path / "city.svg",
            network.positions(),
            network.graph.edges,
            values=values,
            sensors=scenario.node_of.values(),
            title="synthetic Dublin",
        )
        root = _parse(path.read_text())
        assert len(root.findall(f".//{SVG_NS}line")) == (
            network.graph.number_of_edges()
        )
