"""Tests for hyperparameter grid search and the ASCII flow map."""

import networkx as nx
import numpy as np
import pytest

from repro.traffic_model import (
    TrafficFlowModel,
    default_grid,
    grid_search,
    render_flow_map,
)


def _grid_graph(n=5):
    return nx.convert_node_labels_to_integers(nx.grid_2d_graph(n, n))


def _smooth_observations(graph, keep_every=1):
    return {
        n: 100.0 + 15.0 * (n % 5) + 5.0 * (n // 5)
        for i, n in enumerate(graph.nodes)
        if i % keep_every == 0
    }


class TestDefaultGrid:
    def test_spans_zero_to_upper_exclusive(self):
        grid = default_grid(points=5, upper=10.0)
        assert grid == [2.0, 4.0, 6.0, 8.0, 10.0]
        assert all(g > 0 for g in grid)

    def test_validates(self):
        with pytest.raises(ValueError):
            default_grid(points=0)


class TestGridSearch:
    def test_finds_reasonable_hyperparameters(self):
        graph = _grid_graph(5)
        observations = _smooth_observations(graph)
        result = grid_search(
            graph,
            observations,
            alphas=[1.0, 5.0],
            betas=[0.05, 1.0],
            folds=3,
            seed=1,
        )
        assert (result.alpha, result.beta) in result.scores
        assert result.rmse == min(result.scores.values())
        assert len(result.scores) == 4

    def test_validates_inputs(self):
        graph = _grid_graph(3)
        observations = _smooth_observations(graph)
        with pytest.raises(ValueError, match="folds"):
            grid_search(graph, observations, folds=1)
        with pytest.raises(ValueError, match="positive"):
            grid_search(graph, observations, alphas=[0.0], betas=[1.0])
        with pytest.raises(ValueError, match="more observations"):
            grid_search(graph, {0: 1.0, 1: 2.0}, folds=3)

    def test_deterministic_given_seed(self):
        graph = _grid_graph(4)
        observations = _smooth_observations(graph)
        kwargs = dict(alphas=[1.0, 4.0], betas=[0.1], folds=2, seed=7)
        r1 = grid_search(graph, observations, **kwargs)
        r2 = grid_search(graph, observations, **kwargs)
        assert r1.scores == r2.scores

    def test_best_model_usable(self):
        graph = _grid_graph(4)
        observations = _smooth_observations(graph)
        result = grid_search(
            graph, observations, alphas=[2.0], betas=[0.1], folds=2
        )
        model = result.best_model(graph)
        model.fit(observations)
        assert len(model.estimate()) == graph.number_of_nodes()


class TestRenderFlowMap:
    def _positions(self, n=10):
        rng = np.random.default_rng(0)
        return {
            i: (-6.3 + 0.2 * rng.random(), 53.3 + 0.1 * rng.random())
            for i in range(n)
        }

    def test_renders_expected_dimensions(self):
        positions = self._positions()
        values = {i: float(i) for i in positions}
        out = render_flow_map(positions, values, width=40, height=10)
        lines = out.split("\n")
        assert len(lines) == 11  # 10 rows + legend
        assert all(len(line) == 40 for line in lines[:10])
        assert "low" in lines[-1] and "high" in lines[-1]

    def test_high_values_get_dense_shades(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        values = {0: 0.0, 1: 100.0}
        out = render_flow_map(positions, values, width=10, height=5)
        assert "@" in out
        assert "." in out or " " in out

    def test_constant_values_render(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        out = render_flow_map(positions, {0: 5.0, 1: 5.0}, width=8, height=4)
        assert out  # degenerate span handled without division errors

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="2x2"):
            render_flow_map({0: (0, 0)}, {0: 1.0}, width=1, height=5)
        with pytest.raises(ValueError, match="shade"):
            render_flow_map({0: (0, 0)}, {0: 1.0}, shades="x")
        with pytest.raises(ValueError, match="drawable"):
            render_flow_map({0: (0, 0)}, {1: 1.0})

    def test_skips_nodes_without_positions(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        values = {0: 1.0, 1: 2.0, 99: 3.0}
        out = render_flow_map(positions, values, width=8, height=4)
        assert out


class TestEndToEndSparsityStory:
    def test_grid_search_then_estimate_beats_mean_baseline(self):
        graph = _grid_graph(6)
        rng = np.random.default_rng(3)
        truth = {
            n: 200.0
            + 40.0 * np.sin(n / 4.0)
            + 20.0 * (n % 6)
            for n in graph.nodes
        }
        observed = {n: truth[n] + rng.normal(0, 2.0) for n in list(graph)[::2]}
        result = grid_search(
            graph,
            observed,
            alphas=[1.0, 5.0, 10.0],
            betas=[0.01, 0.1],
            folds=3,
            seed=5,
        )
        model = result.best_model(graph, noise=2.0)
        model.fit(observed)
        hidden = [n for n in graph.nodes if n not in observed]
        rmse = model.rmse({n: truth[n] for n in hidden})
        mean = np.mean(list(observed.values()))
        baseline = np.sqrt(np.mean([(mean - truth[n]) ** 2 for n in hidden]))
        assert rmse < baseline
