"""Tests for the graph kernels (eq. 16)."""

import networkx as nx
import numpy as np
import pytest

from repro.traffic_model import (
    adjacency_matrix,
    combinatorial_laplacian,
    graph_kernel,
    is_positive_definite,
    regularized_laplacian_kernel,
)


def _path_graph(n=5):
    return nx.path_graph(n)


class TestLaplacian:
    def test_path_graph_laplacian(self):
        adjacency = adjacency_matrix(_path_graph(3))
        laplacian = combinatorial_laplacian(adjacency)
        expected = np.array(
            [[1, -1, 0], [-1, 2, -1], [0, -1, 1]], dtype=float
        )
        assert np.allclose(laplacian, expected)

    def test_rows_sum_to_zero(self):
        graph = nx.erdos_renyi_graph(20, 0.2, seed=1)
        laplacian = combinatorial_laplacian(adjacency_matrix(graph))
        assert np.allclose(laplacian.sum(axis=1), 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            combinatorial_laplacian(np.ones((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            combinatorial_laplacian(np.array([[0, 1], [0, 0]], dtype=float))

    def test_respects_node_order(self):
        graph = nx.Graph([("a", "b"), ("b", "c")])
        adjacency = adjacency_matrix(graph, nodes=["c", "b", "a"])
        assert adjacency[0, 1] == 1  # c-b
        assert adjacency[0, 2] == 0  # c-a


class TestRegularizedLaplacianKernel:
    def test_positive_definite(self):
        laplacian = combinatorial_laplacian(adjacency_matrix(_path_graph(6)))
        kernel = regularized_laplacian_kernel(laplacian, alpha=2.0, beta=1.0)
        assert is_positive_definite(kernel)

    def test_adjacent_nodes_more_correlated(self):
        kernel = graph_kernel(_path_graph(6), alpha=2.0, beta=1.0)
        # Correlation with the immediate neighbour beats the far end.
        assert kernel[0, 1] > kernel[0, 5]

    def test_correlation_decays_with_distance(self):
        kernel = graph_kernel(nx.path_graph(8), alpha=2.0, beta=1.0)
        row = kernel[0]
        assert all(row[i] > row[i + 1] for i in range(7))

    def test_beta_scales_inverse(self):
        laplacian = combinatorial_laplacian(adjacency_matrix(_path_graph(4)))
        k1 = regularized_laplacian_kernel(laplacian, alpha=2.0, beta=1.0)
        k2 = regularized_laplacian_kernel(laplacian, alpha=2.0, beta=2.0)
        assert np.allclose(k2, k1 / 2.0)

    def test_alpha_lengthens_correlation(self):
        graph = nx.path_graph(10)
        short = graph_kernel(graph, alpha=0.5, beta=1.0)
        long = graph_kernel(graph, alpha=5.0, beta=1.0)

        def correlation(k, i, j):
            return k[i, j] / np.sqrt(k[i, i] * k[j, j])

        assert correlation(long, 0, 5) > correlation(short, 0, 5)

    def test_invalid_hyperparameters(self):
        laplacian = combinatorial_laplacian(adjacency_matrix(_path_graph(3)))
        with pytest.raises(ValueError):
            regularized_laplacian_kernel(laplacian, alpha=0.0, beta=1.0)
        with pytest.raises(ValueError):
            regularized_laplacian_kernel(laplacian, alpha=1.0, beta=-1.0)

    def test_identity_inverse_relation(self):
        # K really is the inverse of beta (L + I/alpha^2).
        laplacian = combinatorial_laplacian(adjacency_matrix(_path_graph(5)))
        alpha, beta = 3.0, 0.7
        kernel = regularized_laplacian_kernel(laplacian, alpha, beta)
        original = beta * (laplacian + np.eye(5) / alpha**2)
        assert np.allclose(kernel @ original, np.eye(5), atol=1e-8)


class TestIsPositiveDefinite:
    def test_detects_pd(self):
        assert is_positive_definite(np.eye(3))

    def test_detects_non_pd(self):
        assert not is_positive_definite(np.array([[1.0, 0], [0, -1.0]]))

    def test_detects_asymmetric(self):
        assert not is_positive_definite(np.array([[1.0, 0.5], [0.0, 1.0]]))
