"""Tests for GP conditioning and the traffic flow model (eq. 15)."""

import networkx as nx
import numpy as np
import pytest

from repro.traffic_model import GraphGP, TrafficFlowModel, graph_kernel


def _grid_graph(n=4):
    return nx.convert_node_labels_to_integers(nx.grid_2d_graph(n, n))


class TestGraphGP:
    def _gp(self, n=6, noise=0.1):
        kernel = graph_kernel(nx.path_graph(n), alpha=3.0, beta=0.5)
        return GraphGP(kernel, noise=noise)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            GraphGP(np.ones((2, 3)))
        with pytest.raises(ValueError, match="noise"):
            GraphGP(np.eye(2), noise=0.0)

    def test_fit_validation(self):
        gp = self._gp()
        with pytest.raises(ValueError, match="at least one"):
            gp.fit([], [])
        with pytest.raises(ValueError, match="same length"):
            gp.fit([0, 1], [1.0])
        with pytest.raises(ValueError, match="out of range"):
            gp.fit([99], [1.0])
        with pytest.raises(ValueError, match="duplicate"):
            gp.fit([1, 1], [1.0, 2.0])

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            self._gp().predict([0])

    def test_predict_validates_index(self):
        gp = self._gp().fit([0], [1.0])
        with pytest.raises(ValueError, match="out of range"):
            gp.predict([99])

    def test_predict_empty(self):
        gp = self._gp().fit([0], [1.0])
        prediction = gp.predict([])
        assert prediction.mean.size == 0

    def test_interpolates_towards_observations(self):
        gp = self._gp(noise=0.01)
        gp.fit([0, 5], [10.0, 0.0])
        prediction = gp.predict([0, 2, 5])
        assert prediction.mean[0] == pytest.approx(10.0, abs=0.8)
        assert prediction.mean[2] == pytest.approx(0.0, abs=0.8)
        # The midpoint lies between the endpoints.
        assert 0.0 < prediction.mean[1] < 10.0

    def test_variance_zero_at_observations_grows_away(self):
        gp = self._gp(noise=0.01)
        gp.fit([0], [5.0])
        prediction = gp.predict([0, 1, 4])
        assert prediction.variance[0] < prediction.variance[1]
        assert prediction.variance[1] < prediction.variance[2]

    def test_full_covariance_on_request(self):
        gp = self._gp().fit([0], [5.0])
        without = gp.predict([1, 2])
        with_cov = gp.predict([1, 2], full_covariance=True)
        assert without.covariance is None
        assert with_cov.covariance.shape == (2, 2)

    def test_log_marginal_likelihood_prefers_fitting_model(self):
        n = 8
        graph = nx.path_graph(n)
        smooth = [float(i) for i in range(n)]  # smooth over the path
        obs_idx = list(range(n))
        good = GraphGP(graph_kernel(graph, 5.0, 0.05), noise=0.5)
        good.fit(obs_idx, smooth)
        bad = GraphGP(np.eye(n) * 0.01, noise=0.5)
        bad.fit(obs_idx, smooth)
        assert good.log_marginal_likelihood(smooth) > bad.log_marginal_likelihood(
            smooth
        )


class TestTrafficFlowModel:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            TrafficFlowModel(nx.Graph())

    def test_fit_validates_nodes(self):
        model = TrafficFlowModel(_grid_graph())
        with pytest.raises(KeyError, match="unknown junctions"):
            model.fit({"mars": 1.0})
        with pytest.raises(ValueError, match="at least one"):
            model.fit({})

    def test_estimates_every_junction(self):
        graph = _grid_graph(4)
        model = TrafficFlowModel(graph, alpha=3.0, beta=0.5, noise=0.1)
        observations = {0: 100.0, 15: 900.0}
        model.fit(observations)
        estimates = model.estimate()
        assert set(estimates) == set(graph.nodes)
        assert all(np.isfinite(v) for v in estimates.values())

    def test_sparsity_fill_in_smooth_field(self):
        # Build a smooth ground-truth field over a grid, observe a
        # subset, and check unobserved junctions are recovered roughly.
        graph = _grid_graph(5)
        truth = {n: 100.0 + 20.0 * (n % 5) + 10.0 * (n // 5) for n in graph}
        observed = {n: truth[n] for n in graph if n % 2 == 0}
        model = TrafficFlowModel(graph, alpha=5.0, beta=0.05, noise=1.0)
        model.fit(observed)
        rmse = model.rmse({n: truth[n] for n in model.unobserved_nodes()})
        # Baseline: predicting the global observed mean everywhere.
        mean = np.mean(list(observed.values()))
        baseline = np.sqrt(
            np.mean(
                [(mean - truth[n]) ** 2 for n in model.unobserved_nodes()]
            )
        )
        assert rmse < baseline

    def test_unobserved_nodes(self):
        graph = _grid_graph(3)
        model = TrafficFlowModel(graph)
        model.fit({0: 1.0, 4: 2.0})
        assert set(model.unobserved_nodes()) == set(graph.nodes) - {0, 4}

    def test_estimate_with_uncertainty(self):
        graph = _grid_graph(3)
        model = TrafficFlowModel(graph, noise=0.1)
        model.fit({0: 1.0})
        out = model.estimate_with_uncertainty([0, 8])
        assert out[0][1] < out[8][1]  # further from the sensor = less sure

    def test_estimate_subset(self):
        graph = _grid_graph(3)
        model = TrafficFlowModel(graph)
        model.fit({0: 1.0})
        estimates = model.estimate([3, 5])
        assert set(estimates) == {3, 5}
