"""Tests for crowd-observation fusion and the rolling estimator."""

import networkx as nx
import pytest

from repro.traffic_model import (
    CONGESTED_FLOW,
    FREE_FLOW,
    CrowdFlowReport,
    RollingFlowEstimator,
    augment_observations,
)


class TestAugmentObservations:
    def test_positive_pins_congested_flow(self):
        merged = augment_observations(
            {}, [CrowdFlowReport("n1", "positive", confidence=0.95)]
        )
        assert merged == {"n1": CONGESTED_FLOW}

    def test_negative_pins_free_flow(self):
        merged = augment_observations(
            {}, [CrowdFlowReport("n1", "negative", confidence=0.95)]
        )
        assert merged == {"n1": FREE_FLOW}

    def test_low_confidence_skipped(self):
        merged = augment_observations(
            {}, [CrowdFlowReport("n1", "positive", confidence=0.4)]
        )
        assert merged == {}

    def test_sensor_wins_by_default(self):
        merged = augment_observations(
            {"n1": 777.0},
            [CrowdFlowReport("n1", "positive", confidence=0.99)],
        )
        assert merged["n1"] == 777.0

    def test_override_replaces_sensor(self):
        merged = augment_observations(
            {"n1": 777.0},
            [CrowdFlowReport("n1", "positive", confidence=0.99)],
            override_sensors=True,
        )
        assert merged["n1"] == CONGESTED_FLOW

    def test_later_report_wins(self):
        merged = augment_observations(
            {},
            [
                CrowdFlowReport("n1", "positive", confidence=0.9, time=10),
                CrowdFlowReport("n1", "negative", confidence=0.9, time=20),
            ],
        )
        assert merged["n1"] == FREE_FLOW

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="crowd value"):
            augment_observations(
                {}, [CrowdFlowReport("n1", "maybe", confidence=1.0)]
            )

    def test_original_mapping_untouched(self):
        observations = {"n1": 500.0}
        augment_observations(
            observations,
            [CrowdFlowReport("n2", "positive", confidence=1.0)],
        )
        assert observations == {"n1": 500.0}

    def test_custom_levels(self):
        merged = augment_observations(
            {},
            [CrowdFlowReport("n1", "positive", confidence=1.0)],
            congested_flow=123.0,
        )
        assert merged["n1"] == 123.0


class TestRollingFlowEstimator:
    def _estimator(self, **kwargs):
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4))
        defaults = dict(alpha=5.0, beta=0.05, noise=5.0, staleness_s=600)
        defaults.update(kwargs)
        return RollingFlowEstimator(graph, **defaults), graph

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingFlowEstimator(nx.Graph())
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            RollingFlowEstimator(graph, staleness_s=0)

    def test_observe_unknown_node(self):
        estimator, _ = self._estimator()
        with pytest.raises(KeyError):
            estimator.observe("mars", 1.0, 0)

    def test_no_data_returns_none(self):
        estimator, _ = self._estimator()
        assert estimator.estimate(1000) is None
        assert estimator.coverage(1000) == 0.0

    def test_estimates_all_junctions(self):
        estimator, graph = self._estimator()
        estimator.observe_many({0: 300.0, 15: 900.0}, time=100)
        estimates = estimator.estimate(200)
        assert set(estimates) == set(graph.nodes)
        assert estimator.refits == 1

    def test_latest_reading_wins(self):
        estimator, _ = self._estimator()
        estimator.observe(0, 100.0, time=10)
        estimator.observe(0, 900.0, time=20)
        assert estimator.active_observations(30)[0] == 900.0

    def test_out_of_order_reading_ignored(self):
        estimator, _ = self._estimator()
        estimator.observe(0, 900.0, time=20)
        estimator.observe(0, 100.0, time=10)  # stale duplicate
        assert estimator.active_observations(30)[0] == 900.0

    def test_staleness_ages_readings_out(self):
        estimator, _ = self._estimator(staleness_s=100)
        estimator.observe(0, 500.0, time=0)
        assert estimator.active_observations(50)
        assert not estimator.active_observations(200)
        assert estimator.estimate(200) is None

    def test_coverage_fraction(self):
        estimator, graph = self._estimator()
        estimator.observe_many({0: 1.0, 1: 2.0}, time=0)
        assert estimator.coverage(10) == pytest.approx(2 / 16)

    def test_estimates_track_observations(self):
        estimator, _ = self._estimator(noise=1.0)
        estimator.observe_many({0: 200.0, 15: 800.0}, time=0)
        estimates = estimator.estimate(10)
        assert estimates[0] < estimates[15]

    def test_continuous_reestimation_follows_changes(self):
        estimator, _ = self._estimator(noise=1.0, staleness_s=300)
        estimator.observe_many({0: 200.0, 15: 200.0}, time=0)
        first = estimator.estimate(10)
        estimator.observe_many({0: 900.0, 15: 900.0}, time=400)
        second = estimator.estimate(410)
        assert second[5] > first[5]
        assert estimator.refits == 2
