"""Benchmark smoke: run the Figure 6 measurement at tiny scale in tier-1.

The full benchmarks live under ``benchmarks/`` and are not collected by
the default test run.  This smoke test imports the Figure 6 latency
benchmark's measurement function and replays it on its (already tiny)
scenario so a regression in the crowd engine or the scheduling path
that feeds it fails the ordinary test suite, not just a nightly bench.

Select only these with ``pytest -m bench_smoke``.
"""

import importlib
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def fig6():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        yield importlib.import_module("bench_fig6_query_latency")
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))


@pytest.mark.bench_smoke
def test_fig6_measurement_shape(fig6):
    means = fig6._measure()
    assert set(means) == set(fig6.CONNECTIONS)
    for connection in fig6.CONNECTIONS:
        # Engine-side trigger latency is small and connection-independent.
        assert 30.0 <= means[connection]["trigger"] <= 60.0
        # End-to-end engine latency stays under one second (paper headline).
        assert sum(means[connection].values()) < 1000.0
    # 2G is the slow outlier for network-bound steps.
    assert means["2g"]["push"] > means["3g"]["push"]
    assert means["2g"]["communication"] > means["wifi"]["communication"]


@pytest.mark.bench_smoke
def test_fig6_tracks_paper_calibration(fig6):
    means = fig6._measure()
    for connection in fig6.CONNECTIONS:
        assert means[connection]["push"] == pytest.approx(
            fig6.PAPER_PUSH[connection], rel=0.2
        )
        assert means[connection]["communication"] == pytest.approx(
            fig6.PAPER_COMM[connection], rel=0.2
        )
