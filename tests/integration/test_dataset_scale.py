"""Integration: the scenario defaults match the paper's dataset scale.

Section 7: "The bus dataset includes 942 buses.  Each operating bus
emits SDEs every 20-30 seconds ... The SCATS dataset includes 966
sensors.  SCATS sensors transmit information every six minutes."
"""

import pytest

from repro.dublin import (
    EMISSION_PERIOD_S,
    SCATS_PERIOD_S,
    DublinScenario,
    ScenarioConfig,
)


class TestPaperScale:
    def test_default_fleet_size(self):
        assert ScenarioConfig().n_buses == 942

    def test_emission_period_bounds(self):
        assert EMISSION_PERIOD_S == (20, 30)

    def test_scats_period_six_minutes(self):
        assert SCATS_PERIOD_S == 360

    @pytest.mark.slow
    def test_paper_scale_stream_rates(self):
        # Full fleet over five minutes: bus SDE rate ~ 942/25 ≈ 38/s,
        # SCATS rate ~ sensors/360.
        scenario = DublinScenario(
            ScenarioConfig(seed=0, n_buses=942, n_lines=40,
                           n_intersections=350)
        )
        data = scenario.generate(0, 300)
        counts = data.counts_by_type()
        bus_rate = counts["move"] / 300
        assert bus_rate == pytest.approx(942 / 25.0, rel=0.15)
        scats_rate = counts["traffic"] / 300
        assert scats_rate == pytest.approx(
            scenario.scats.n_sensors / 360.0, rel=0.15
        )

    def test_four_region_partition(self):
        scenario = DublinScenario(
            ScenarioConfig(seed=0, rows=10, cols=10, n_buses=40,
                           n_lines=6, n_intersections=30)
        )
        data = scenario.generate(0, 600)
        split = scenario.split_by_region(data)
        assert set(split) == {"central", "north", "west", "south"}
        non_empty = [r for r, (evs, _) in split.items() if evs]
        assert len(non_empty) >= 3
