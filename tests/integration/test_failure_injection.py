"""Integration: behaviour under injected component failures.

The paper motivates its design with exactly these failure classes —
"inaccurate measurements ... network local failures ... unexpected
interference of mediators" (Section 1) — so the reproduction should
degrade the same way: inertia carries fluent state over sensor
silence, stale sensors age out of the flow field, and an unreachable
crowd leaves disagreements unresolved rather than crashing the loop.
"""

import pytest

from repro.core import RTEC, Event
from repro.core.traffic import (
    Intersection,
    ScatsTopology,
    build_traffic_definitions,
    default_traffic_params,
)
from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem
from repro.traffic_model import RollingFlowEstimator

LON, LAT = -6.26, 53.35
CONGESTED = dict(density=90.0, flow=300.0)


class TestSensorSilence:
    def test_congestion_persists_by_inertia_over_sensor_outage(self):
        """A sensor that reports congestion and then goes silent keeps
        its congestion fluent holding (the law of inertia) until a
        contradicting reading arrives."""
        topo = ScatsTopology(
            [Intersection("I1", LON, LAT, (("I1", "A", "S1"),))]
        )
        engine = RTEC(
            build_traffic_definitions(topo, adaptive=False),
            window=600,
            step=300,
            params=default_traffic_params(),
        )
        engine.feed([
            Event("traffic", 100, {
                "intersection": "I1", "approach": "A", "sensor": "S1",
                **CONGESTED,
            })
        ])
        # Three silent windows later the fluent still holds.
        last = None
        for snapshot in engine.run(1200):
            last = snapshot
        assert last.holds_at("scatsCongestion", ("I1", "A", "S1"), 1200)
        # Recovery reading terminates it.
        engine.feed([
            Event("traffic", 1300, {
                "intersection": "I1", "approach": "A", "sensor": "S1",
                "density": 15.0, "flow": 1000.0,
            })
        ])
        snapshot = engine.query(1500)
        assert not snapshot.holds_at(
            "scatsCongestion", ("I1", "A", "S1"), 1400
        )

    def test_stale_sensor_drops_out_of_flow_field(self):
        import networkx as nx

        estimator = RollingFlowEstimator(
            nx.path_graph(5), staleness_s=300, noise=1.0
        )
        estimator.observe(0, 200.0, time=0)
        estimator.observe(4, 900.0, time=1000)
        # At t=1100 the reading from t=0 is stale: only node 4 anchors.
        observations = estimator.active_observations(1100)
        assert set(observations) == {4}
        estimates = estimator.estimate(1100)
        # With a single anchor the field collapses towards it.
        assert estimates[0] == pytest.approx(estimates[4], rel=0.3)


class TestCrowdOutage:
    @pytest.fixture(scope="class")
    def scenario(self):
        return DublinScenario(
            ScenarioConfig(
                seed=37, rows=10, cols=10, n_intersections=25,
                n_buses=40, n_lines=6, unreliable_fraction=0.25,
                n_incidents=3, incident_window=(0, 1200),
            )
        )

    def test_all_devices_offline_leaves_disagreements_unresolved(
        self, scenario
    ):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(adaptive=True, crowd_enabled=True,
                         n_participants=20, seed=37),
        )
        # Simulate a push-service outage: every device goes dark.
        for participant in system.crowd.engine.online_participants():
            system.crowd.engine.set_online(
                participant.participant_id, False
            )
        report = system.run(0, 1200)
        assert report.crowd_resolutions == 0
        if report.console.counts().get("source disagreement"):
            assert report.crowd_unresolved > 0

    def test_partial_outage_still_resolves(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(adaptive=True, crowd_enabled=True,
                         n_participants=40, seed=37,
                         participant_radius_m=5000.0),
        )
        online = system.crowd.engine.online_participants()
        for participant in online[: len(online) // 2]:
            system.crowd.engine.set_online(
                participant.participant_id, False
            )
        report = system.run(0, 1200)
        # Half the fleet still suffices to resolve something (if any
        # disagreement occurred at all).
        if report.console.counts().get("source disagreement"):
            assert report.crowd_resolutions > 0


class TestMediatorDelays:
    def test_heavily_delayed_stream_recognised_with_wide_window(self):
        scenario = DublinScenario(
            ScenarioConfig(
                seed=41, rows=10, cols=10, n_intersections=20,
                n_buses=30, n_lines=5,
            )
        )
        data = scenario.generate(0, 900)
        # Inject mediator lag: every SDE arrives 200 s late.
        delayed = [
            Event(e.type, e.time, dict(e.payload), arrival=e.arrival + 200)
            for e in data.events
        ]
        narrow = RTEC(
            build_traffic_definitions(scenario.topology),
            window=300, step=300, params=default_traffic_params(),
        )
        wide = RTEC(
            build_traffic_definitions(scenario.topology),
            window=900, step=300, params=default_traffic_params(),
        )
        narrow.feed(delayed, data.facts)
        wide.feed(delayed, data.facts)
        narrow_events = sum(s.n_events for s in narrow.run(1200))
        wide_events = sum(s.n_events for s in wide.run(1200))
        # The wide window sees (multiply counts) the delayed SDEs; the
        # narrow window misses a chunk of them entirely.
        assert wide_events > narrow_events
