"""Tier-1 throughput gate: the columnar path must outrun Dublin.

A miniature of ``benchmarks/bench_throughput.py`` small enough to run
on every PR: array-native batches (no ``Event`` object before
admission) are fed step by step into a compiled engine, and the
sustained ingest rate must clear ``REQUIRED_MULTIPLE`` times the
paper's fleet-wide arrival rate of one SDE every ~2 s.  The margin is
three orders of magnitude on any hardware, so the gate only trips on
a genuine hot-path catastrophe (e.g. an accidental O(n²) admission or
a per-row Python round-trip sneaking back in), not on CI noise.
"""

import time

import numpy as np
import pytest

from repro.core import RTEC
from repro.core.columns import EventColumns, SDEColumns
from repro.core.traffic import build_traffic_definitions, default_traffic_params

from tests.core.helpers import make_topology

DUBLIN_SDE_RATE = 0.5
REQUIRED_MULTIPLE = 10.0

WINDOW_S = 600
STEP_S = 300
READ_PERIOD_S = 30
DURATION_S = 6 * STEP_S


def _step_batches(topology):
    sensors = [
        key
        for int_id in topology.ids()
        for key in topology.sensors_of(int_id)
    ]
    n_sensors = len(sensors)
    ticks = np.arange(READ_PERIOD_S, DURATION_S + 1, READ_PERIOD_S, np.int64)
    times = np.repeat(ticks, n_sensors)
    phase = np.arange(n_sensors, dtype=np.float64)
    density = 90.0 + 80.0 * np.sin(
        (ticks.astype(np.float64) / 600.0)[:, None] + phase[None, :] * 0.7
    )
    flow = np.where(density > 120.0, 300.0, 900.0)
    inter_col = [k[0] for k in sensors] * len(ticks)
    approach_col = [k[1] for k in sensors] * len(ticks)
    sensor_col = [k[2] for k in sensors] * len(ticks)
    rows_per_step = (STEP_S // READ_PERIOD_S) * n_sensors
    batches = []
    for start in range(0, len(times), rows_per_step):
        stop = min(start + rows_per_step, len(times))
        block = EventColumns.from_arrays(
            "traffic",
            times[start:stop],
            numeric={
                "density": density.ravel()[start:stop],
                "flow": flow.ravel()[start:stop],
            },
            extra={
                "intersection": inter_col[start:stop],
                "approach": approach_col[start:stop],
                "sensor": sensor_col[start:stop],
            },
        )
        batches.append(
            (int(times[stop - 1]), SDEColumns(events=(block,)))
        )
    return batches


def _ingest(topology, batches, *, compiled):
    engine = RTEC(
        build_traffic_definitions(
            topology,
            adaptive=False,
            noisy_variant="pessimistic",
            feeds=("scats",),
        ),
        window=WINDOW_S,
        step=STEP_S,
        params=default_traffic_params(),
        compiled=compiled,
    )
    n_outputs = 0
    t0 = time.perf_counter()
    for q, batch in batches:
        engine.feed_columns(batch)
        snapshot = engine.query(q)
        n_outputs += sum(len(v) for v in snapshot.occurrences.values())
        n_outputs += sum(
            len(il)
            for groups in snapshot.fluents.values()
            for il in groups.values()
        )
    return time.perf_counter() - t0, n_outputs


@pytest.mark.bench_smoke
def test_columnar_ingest_beats_dublin_rate():
    topology = make_topology(n_intersections=8)
    batches = _step_batches(topology)
    n_sdes = sum(batch.n for _, batch in batches)
    assert n_sdes > 0

    elapsed, outputs = _ingest(topology, batches, compiled=True)
    assert outputs > 0, "gate stream produced no CEs — thresholds drifted"
    achieved = n_sdes / elapsed if elapsed > 0 else float("inf")
    multiple = achieved / DUBLIN_SDE_RATE
    assert multiple >= REQUIRED_MULTIPLE, (
        f"columnar ingest sustained {achieved:.1f} SDE/s = "
        f"{multiple:.1f}x Dublin (required {REQUIRED_MULTIPLE:.0f}x)"
    )


@pytest.mark.bench_smoke
def test_gate_stream_parity_compiled_vs_interpreter():
    """The gate's own stream recognises identically on both paths —
    the throughput number measures the same computation."""
    topology = make_topology(n_intersections=4)
    batches = _step_batches(topology)
    _, compiled_outputs = _ingest(topology, batches, compiled=True)
    _, interp_outputs = _ingest(topology, batches, compiled=False)
    assert compiled_outputs == interp_outputs
