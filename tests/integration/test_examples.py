"""Integration: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_examples_present():
    # The deliverable requires a quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4
