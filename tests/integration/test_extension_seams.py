"""Integration: the extension seams documented in docs/extending.md.

Each test exercises one documented extension pattern end-to-end so the
guide cannot rot: a custom CE definition, a custom crowd aggregator in
the component, a custom selection policy in the engine, and a real
feed loaded through the CSV seam.
"""

import pytest

from repro.core import RTEC, Occurrence
from repro.core.rules import DerivedEvent
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.crowd import (
    CrowdsourcingComponent,
    LocationPolicy,
    MajorityVote,
    Participant,
    QueryExecutionEngine,
    ReliabilityPolicy,
)
from repro.dublin import DublinScenario, ScenarioConfig, read_csv, write_csv


class GridlockWarning(DerivedEvent):
    """The docs/extending.md example definition, verbatim in spirit."""

    def __init__(self, threshold=2):
        super().__init__(
            "gridlockWarning", depends_on=("scatsIntCongestion",)
        )
        self.threshold = threshold

    def occurrences(self, ctx):
        congested = [
            key
            for key, ivs in ctx.fluent("scatsIntCongestion").items()
            if ivs.holds_at(ctx.window_end)
        ]
        if len(congested) >= self.threshold:
            yield Occurrence(
                self.name,
                ("city",),
                ctx.window_end,
                {"congested_intersections": len(congested)},
            )


@pytest.fixture(scope="module")
def scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=71, rows=10, cols=10, n_intersections=30,
            n_buses=30, n_lines=5, n_incidents=25,
            incident_window=(0, 1800),
        )
    )


class TestCustomDefinitionSeam:
    def test_gridlock_warning_fires(self, scenario):
        data = scenario.generate(0, 1800)
        definitions = build_traffic_definitions(scenario.topology)
        definitions.append(GridlockWarning(threshold=1))
        engine = RTEC(
            definitions, window=900, step=300,
            params=default_traffic_params(),
        )
        engine.feed(data.events, data.facts)
        fired = []
        for snapshot in engine.run(1800):
            fired.extend(snapshot.all_occurrences("gridlockWarning"))
        assert fired, "incident-rich scenario must trigger the warning"
        assert all(o["congested_intersections"] >= 1 for o in fired)


class TestCustomAggregatorSeam:
    def test_component_accepts_majority_vote(self, scenario):
        engine = QueryExecutionEngine(seed=1)
        int_id = scenario.topology.ids()[0]
        lon, lat = scenario.topology.location(int_id)
        for i in range(5):
            engine.register(Participant(f"p{i}", 0.05, lon=lon, lat=lat))
        component = CrowdsourcingComponent(
            engine, aggregator=MajorityVote()
        )
        outcome = component.handle_disagreement(
            intersection=int_id, lon=lon, lat=lat, time=100,
            true_label="congestion",
        )
        assert outcome.crowd_event is not None
        assert outcome.crowd_event["value"] == "positive"


class TestComposedPolicySeam:
    def test_location_then_reliability(self, scenario):
        int_id = scenario.topology.ids()[0]
        lon, lat = scenario.topology.location(int_id)
        estimates = {"near-good": 0.05, "near-bad": 0.6}
        policy = LocationPolicy(500) | ReliabilityPolicy(estimates, k=1)
        engine = QueryExecutionEngine(policy=policy, seed=2)
        engine.register(Participant("near-good", 0.05, lon=lon, lat=lat))
        engine.register(Participant("near-bad", 0.6, lon=lon, lat=lat))
        engine.register(Participant("far", 0.01, lon=lon + 1.0, lat=lat))
        from repro.crowd import CrowdQuery, DisagreementTask

        result = engine.execute(
            CrowdQuery(
                task=DisagreementTask(
                    1, lon=lon, lat=lat, true_label="congestion"
                )
            )
        )
        assert result.selected == ["near-good"]


class TestRealFeedSeam:
    def test_csv_loader_substitutes_generation(self, scenario, tmp_path):
        # "A real feed replaces DublinScenario.generate() with a loader
        # producing those records" — the CSV reader is that loader.
        data = scenario.generate(0, 900)
        write_csv(tmp_path / "feed", data)
        loaded = read_csv(tmp_path / "feed")
        engine = RTEC(
            build_traffic_definitions(scenario.topology),
            window=600, step=300, params=default_traffic_params(),
        )
        engine.feed(loaded.events, loaded.facts)
        snapshots = list(engine.run(900))
        assert sum(s.n_events for s in snapshots) > 0
