"""Integration: a full simulated day through the closed loop (slow)."""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem

DAY = 24 * 3600


@pytest.mark.slow
def test_full_day_run():
    scenario = DublinScenario(
        ScenarioConfig(
            seed=61, rows=10, cols=10, n_intersections=30,
            n_buses=40, n_lines=6, unreliable_fraction=0.1,
            n_incidents=12, incident_window=(0, DAY),
        )
    )
    system = UrbanTrafficSystem(
        scenario,
        SystemConfig(
            window=1800, step=900, adaptive=True, noisy_variant="crowd",
            n_participants=30, seed=61,
        ),
    )
    report = system.run(0, DAY)

    # 96 recognition steps per region, all real-time.
    for region, log in report.logs.items():
        assert len(log.snapshots) == DAY // 900, region
        assert log.mean_elapsed < 900, "recognition must be real-time"

    # A day with incidents and unreliable buses produces alerts of
    # several kinds and the crowd loop resolves disagreements.
    counts = report.console.counts()
    assert counts.get("bus congestion", 0) > 0
    assert counts.get("source disagreement", 0) > 0
    assert report.crowd_resolutions > 0

    # The flow field saw a day of readings and covers the city.
    assert system.flow_estimator.refits >= 1
    assert len(report.flow_estimates) == scenario.network.n_junctions()

    # Rush-hour demand shows up in the ground truth the sensors saw:
    # morning rush is denser than the small hours.
    gt = scenario.ground_truth
    node = next(iter(scenario.network.graph.nodes))
    assert gt.density(node, int(8.5 * 3600)) > gt.density(node, 3 * 3600)


@pytest.mark.slow
def test_recognition_throughput_floor():
    """Performance regression guard on the Figure 4 workload shape: a
    10-minute window over the paper-density stream must recognise in
    well under real time."""
    from repro.core import RTEC
    from repro.core.traffic import (
        build_traffic_definitions,
        default_traffic_params,
    )

    scenario = DublinScenario(
        ScenarioConfig(seed=73, n_buses=450, n_lines=30,
                       n_intersections=350, n_incidents=5,
                       incident_window=(0, 1800)),
    )
    data = scenario.generate(0, 1800)
    engine = RTEC(
        build_traffic_definitions(scenario.topology, adaptive=True,
                                  noisy_variant="pessimistic"),
        window=600, step=600, params=default_traffic_params(),
    )
    engine.feed(data.events, data.facts)
    snapshots = list(engine.run(1800))
    total_sdes = sum(s.n_events for s in snapshots)
    assert total_sdes > 20_000
    # Real-time margin: every 10-minute window recognised in < 30 s
    # even on slow CI hardware (typically ~0.1 s).
    assert all(s.elapsed < 30.0 for s in snapshots)
