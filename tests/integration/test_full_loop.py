"""Integration: the complete loop wired as a Streams XML topology.

Reproduces the paper's deployment shape end to end: one bus stream,
SCATS streams, the RTEC processor emitting CEs to a queue, the
crowdsourcing processor resolving source disagreements, and the crowd
answers fed back into the engine — all described declaratively and run
by the deterministic middleware.
"""

import pytest

from repro.core import RTEC
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.crowd import (
    CrowdsourcingComponent,
    Participant,
    QueryExecutionEngine,
)
from repro.dublin import DublinScenario, ScenarioConfig, stream_items
from repro.streams import StreamRuntime, parse_topology
from repro.system import (
    CrowdsourcingProcessor,
    FluentFeedbackProcessor,
    RtecProcessor,
)


@pytest.fixture(scope="module")
def wired():
    scenario = DublinScenario(
        ScenarioConfig(
            seed=13,
            rows=10,
            cols=10,
            n_intersections=25,
            n_buses=40,
            n_lines=6,
            unreliable_fraction=0.25,
            n_incidents=4,
            incident_window=(0, 1200),
        )
    )
    data = scenario.generate(0, 1200)
    engine = RTEC(
        build_traffic_definitions(
            scenario.topology, adaptive=True, noisy_variant="crowd"
        ),
        window=600,
        step=300,
        params=default_traffic_params(),
    )
    rtec_processor = RtecProcessor(engine)

    crowd_engine = QueryExecutionEngine(seed=5)
    for i, int_id in enumerate(scenario.topology.ids()[:10]):
        lon, lat = scenario.topology.location(int_id)
        crowd_engine.register(Participant(f"p{i}", 0.1, lon=lon, lat=lat))
    component = CrowdsourcingComponent(crowd_engine)

    def truth(int_id, t):
        node = scenario.node_of[int_id]
        return scenario.ground_truth.congestion_label(node, t)

    registry = {
        "dublin.Stream": lambda **_: stream_items(data),
        "system.Rtec": lambda **_: rtec_processor,
        "system.Crowd": lambda **_: CrowdsourcingProcessor(
            component, locate=scenario.topology.location, truth_lookup=truth
        ),
        "system.Feedback": lambda **_: FluentFeedbackProcessor(engine),
    }
    xml = """
    <container>
      <stream id="dublin" class="dublin.Stream"/>
      <process id="cep" input="dublin" output="complex-events">
        <processor class="system.Rtec"/>
      </process>
      <process id="crowdsourcing" input="complex-events" output="crowd-answers">
        <processor class="system.Crowd"/>
      </process>
      <process id="feedback" input="crowd-answers" output="resolved">
        <processor class="system.Feedback"/>
      </process>
    </container>
    """
    topology = parse_topology(xml, registry)
    StreamRuntime(topology).run()
    rtec_processor.flush(1200)
    return scenario, topology, rtec_processor, component


class TestFullLoopOverStreams:
    def test_ces_recognised(self, wired):
        _, topology, rtec_processor, _ = wired
        ce_items = topology.queues["complex-events"].snapshot()
        assert ce_items
        types = {item["@type"] for item in ce_items}
        assert "sourceDisagreement" in types

    def test_crowd_answers_produced_and_fed_back(self, wired):
        _, topology, _, component = wired
        answers = topology.queues["crowd-answers"].snapshot()
        assert answers
        assert all(item["@type"] == "crowd" for item in answers)
        assert component.outcomes
        resolved = topology.queues["resolved"].snapshot()
        assert len(resolved) == len(answers)

    def test_recognition_ran_all_query_times(self, wired):
        _, _, rtec_processor, _ = wired
        times = [s.query_time for s in rtec_processor.log.snapshots]
        assert times == [300, 600, 900, 1200]

    def test_reliability_estimates_updated(self, wired):
        *_, component = wired
        em = component.aggregator
        assert em.total_events == len(
            [o for o in component.outcomes if o.estimate is not None]
        )
