"""Tests for processes, queues and the deterministic runtime."""

import pytest

from repro.streams import (
    Collect,
    Counter,
    EmitTo,
    Filter,
    Process,
    ProcessorContext,
    SelectKeys,
    SetAttributes,
    Source,
    StreamRuntime,
    Tap,
    Topology,
    Transform,
    item_arrival,
    make_item,
    normalise_result,
)


def _items(values, source_time=0):
    return [make_item({"v": v}, time=source_time + i) for i, v in enumerate(values)]


class TestSource:
    def test_requires_time_stamp(self):
        with pytest.raises(ValueError, match="@time"):
            Source("s", [{"v": 1}])

    def test_sorts_by_arrival(self):
        items = [
            make_item({"v": "late"}, time=0, arrival=10),
            make_item({"v": "early"}, time=5),
        ]
        src = Source("s", items)
        assert [i["v"] for i in src] == ["early", "late"]
        assert len(src) == 2

    def test_stamps_source_name(self):
        src = Source("bus", [make_item({"v": 1}, time=0)])
        assert next(iter(src))["@source"] == "bus"


class TestProcessors:
    def test_normalise_result(self):
        assert normalise_result(None) == []
        assert normalise_result({"a": 1}) == [{"a": 1}]
        assert normalise_result([{"a": 1}, {"b": 2}]) == [{"a": 1}, {"b": 2}]

    def test_filter(self):
        p = Filter(lambda item: item["v"] > 2)
        assert p.process({"v": 3}) == {"v": 3}
        assert p.process({"v": 1}) is None

    def test_transform_fan_out(self):
        p = Transform(lambda item: [dict(item), dict(item)])
        assert len(normalise_result(p.process({"v": 1}))) == 2

    def test_set_attributes(self):
        p = SetAttributes(region="north")
        assert p.process({"v": 1}) == {"v": 1, "region": "north"}

    def test_select_keys_keeps_reserved(self):
        p = SelectKeys(["v"])
        item = {"v": 1, "noise": 2, "@time": 7}
        assert p.process(item) == {"v": 1, "@time": 7}

    def test_tap(self):
        seen = []
        p = Tap(seen.append)
        p.process({"v": 1})
        assert seen == [{"v": 1}]

    def test_counter(self):
        p = Counter(group_by="region")
        p.process({"region": "north"})
        p.process({"region": "north"})
        p.process({"region": "south"})
        assert p.total == 3
        assert p.per_group == {"north": 2, "south": 1}


class TestTopologyConstruction:
    def test_duplicate_source_rejected(self):
        topo = Topology()
        topo.add_source(Source("s", []))
        with pytest.raises(ValueError, match="duplicate source"):
            topo.add_source(Source("s", []))

    def test_duplicate_process_rejected(self):
        topo = Topology()
        topo.add_process(Process("p", input="s", processors=[Collect()]))
        with pytest.raises(ValueError, match="duplicate process"):
            topo.add_process(Process("p", input="s", processors=[Collect()]))

    def test_process_requires_processors(self):
        with pytest.raises(ValueError, match="at least one"):
            Process("p", input="s", processors=[])

    def test_unknown_input_caught_by_validate(self):
        topo = Topology()
        topo.add_process(Process("p", input="ghost", processors=[Collect()]))
        with pytest.raises(ValueError, match="unknown input"):
            topo.validate()

    def test_output_queue_auto_created(self):
        topo = Topology()
        topo.add_source(Source("s", []))
        topo.add_process(
            Process("p", input="s", processors=[Collect()], output="q")
        )
        assert "q" in topo.queues


class TestFluentBuilder:
    def test_chained_construction(self):
        sink = Collect()
        topo = (
            Topology()
            .source("s", _items([1, 2, 3]))
            .process(
                "keep-even",
                input="s",
                processors=[Filter(lambda i: i["v"] % 2 == 0)],
                output="evens",
            )
            .process("sink", input="evens", processors=[sink])
        )
        StreamRuntime(topo).run()
        assert [i["v"] for i in sink.items] == [2]

    def test_builder_and_add_methods_interoperate(self):
        topo = Topology().source("s", _items([1]))
        topo.add_process(Process("p", input="s", processors=[Collect()]))
        topo.queue("side").service("svc", object())
        topo.validate()
        assert "side" in topo.queues
        assert "svc" in topo.services

    def test_source_accepts_instance(self):
        topo = Topology().source(Source("named", _items([1])))
        assert "named" in topo.sources

    def test_process_accepts_instance(self):
        process = Process("p", input="s", processors=[Collect()])
        topo = Topology().source("s", _items([1])).process(process)
        assert topo.processes["p"] is process

    def test_process_requires_wiring_kwargs(self):
        with pytest.raises(TypeError, match="input"):
            Topology().process("p")


class TestConsumerIndex:
    def test_validate_builds_index(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        p1 = Process("a", input="s", processors=[Collect()])
        p2 = Process("b", input="s", processors=[Collect()])
        topo.add_process(p1)
        topo.add_process(p2)
        topo.validate()
        assert topo.consumers_of("s") == [p1, p2]
        assert topo.consumers_of("nothing-consumes-this") == []

    def test_index_rebuilt_after_graph_change(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        topo.validate()
        assert topo.consumers_of("s") == []
        late = Process("late", input="s", processors=[Collect()])
        topo.add_process(late)
        # add_process invalidates; the next lookup rebuilds.
        assert topo.consumers_of("s") == [late]

    def test_lookup_without_validate_builds_lazily(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        p = Process("p", input="s", processors=[Collect()])
        topo.add_process(p)
        assert topo.consumers_of("s") == [p]


class TestQueueSourceShadowing:
    """A process output named like a source must be rejected: both
    would resolve to the same consumer list, silently treating queue
    items as source items."""

    def test_validate_rejects_output_shadowing_source(self):
        topo = Topology()
        topo.add_source(Source("readings", _items([1])))
        topo.add_process(
            Process(
                "p", input="readings", processors=[Collect()],
                output="readings",
            )
        )
        with pytest.raises(ValueError, match="shadow"):
            topo.validate()

    def test_validate_rejects_source_added_after_process(self):
        topo = Topology()
        topo.add_process(
            Process("p", input="x", processors=[Collect()], output="late")
        )
        topo.add_source(Source("x", _items([1])))
        topo.add_source(Source("late", _items([1])))
        with pytest.raises(ValueError, match="shadow"):
            topo.validate()

    def test_add_queue_rejects_known_source_name(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        with pytest.raises(ValueError, match="shadow"):
            topo.add_queue("s")

    def test_runtime_refuses_to_run_shadowed_graph(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        topo.add_process(
            Process("p", input="s", processors=[Collect()], output="s")
        )
        with pytest.raises(ValueError, match="shadow"):
            StreamRuntime(topo).run()


class TestRuntime:
    def test_linear_pipeline(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1, 2, 3, 4])))
        sink = Collect()
        topo.add_process(
            Process(
                "p",
                input="s",
                processors=[Filter(lambda i: i["v"] % 2 == 0), sink],
            )
        )
        stats = StreamRuntime(topo).run()
        assert [i["v"] for i in sink.items] == [2, 4]
        assert stats.items_ingested == 4
        assert stats.per_process["p"] == (4, 2)

    def test_queue_connects_processes(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1, 2])))
        sink = Collect()
        topo.add_process(
            Process(
                "up",
                input="s",
                processors=[SetAttributes(stage="one")],
                output="mid",
            )
        )
        topo.add_process(Process("down", input="mid", processors=[sink]))
        StreamRuntime(topo).run()
        assert [i["stage"] for i in sink.items] == ["one", "one"]

    def test_queue_retains_history(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1, 2])))
        topo.add_process(
            Process("up", input="s", processors=[Collect()], output="out")
        )
        StreamRuntime(topo).run()
        assert len(topo.queues["out"]) == 2

    def test_queue_broadcasts_to_all_consumers(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        a, b = Collect(), Collect()
        topo.add_process(
            Process("up", input="s", processors=[Tap(lambda i: None)],
                    output="mid")
        )
        topo.add_process(Process("left", input="mid", processors=[a]))
        topo.add_process(Process("right", input="mid", processors=[b]))
        StreamRuntime(topo).run()
        assert len(a.items) == 1
        assert len(b.items) == 1

    def test_consumers_get_independent_copies(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        a = Collect()
        topo.add_process(
            Process("mutator", input="s",
                    processors=[SetAttributes(mutated=True)])
        )
        topo.add_process(Process("observer", input="s", processors=[a]))
        StreamRuntime(topo).run()
        assert "mutated" not in a.items[0]

    def test_arrival_order_interleaves_sources(self):
        topo = Topology()
        topo.add_source(
            Source("a", [make_item({"v": "a"}, time=t) for t in (0, 10)])
        )
        topo.add_source(
            Source("b", [make_item({"v": "b"}, time=5)])
        )
        order = []
        topo.add_process(
            Process("pa", input="a", processors=[Tap(lambda i: order.append(i["v"]))])
        )
        topo.add_process(
            Process("pb", input="b", processors=[Tap(lambda i: order.append(i["v"]))])
        )
        StreamRuntime(topo).run()
        assert order == ["a", "b", "a"]

    def test_queue_items_processed_before_later_source_items(self):
        topo = Topology()
        topo.add_source(
            Source("s", [make_item({"v": i}, time=i) for i in (0, 1)])
        )
        order = []
        topo.add_process(
            Process(
                "up",
                input="s",
                processors=[Tap(lambda i: order.append(("up", i["v"])))],
                output="mid",
            )
        )
        topo.add_process(
            Process(
                "down",
                input="mid",
                processors=[Tap(lambda i: order.append(("down", i["v"])))],
            )
        )
        StreamRuntime(topo).run()
        assert order == [("up", 0), ("down", 0), ("up", 1), ("down", 1)]

    def test_emit_to_side_queue(self):
        topo = Topology()
        topo.add_source(Source("s", _items([1, 2])))
        topo.add_process(
            Process("p", input="s", processors=[EmitTo("alerts")])
        )
        StreamRuntime(topo).run()
        assert len(topo.queues["alerts"]) == 2

    def test_services_lifecycle(self):
        class Svc:
            def __init__(self):
                self.events = []

            def start(self):
                self.events.append("start")

            def stop(self):
                self.events.append("stop")

        topo = Topology()
        svc = Svc()
        topo.services.register("svc", svc)
        topo.add_source(Source("s", _items([1])))
        seen = []

        class UsesService(Tap):
            def __init__(self):
                super().__init__(lambda i: seen.append(
                    self.context.service("svc")
                ))

        topo.add_process(Process("p", input="s", processors=[UsesService()]))
        StreamRuntime(topo).run()
        assert seen == [svc]
        assert svc.events == ["start", "stop"]

    def test_context_without_services(self):
        ctx = ProcessorContext()
        with pytest.raises(LookupError):
            ctx.service("anything")


class TestSourceOffsets:
    """Offset tracking + start_offsets resume (the journal's replay
    contract for raw stream items)."""

    def _topology(self, n=20):
        topo = Topology()
        topo.add_source(
            Source("feed", [make_item({"n": i}, time=i) for i in range(n)])
        )
        sink = Collect()
        topo.add_process(Process("p", input="feed", processors=[sink]))
        return topo, sink

    def test_offsets_count_consumed_source_items(self):
        topo, _ = self._topology()
        stats = StreamRuntime(topo).run()
        assert stats.source_offsets == {"feed": 20}
        assert stats.items_skipped == 0

    def test_start_offsets_skip_the_processed_prefix(self):
        topo, sink = self._topology()
        stats = StreamRuntime(topo, start_offsets={"feed": 15}).run()
        assert stats.items_skipped == 15
        assert stats.items_ingested == 5
        assert [i["n"] for i in sink.items] == [15, 16, 17, 18, 19]
        # Final offsets match an uninterrupted run's.
        assert stats.source_offsets == {"feed": 20}

    def test_journal_records_offsets_and_resume_matches(self, tmp_path):
        from repro.recovery import WriteAheadJournal

        journal = WriteAheadJournal(tmp_path)
        journal.open(0)
        topo, _ = self._topology()
        full = StreamRuntime(topo, journal=journal, journal_every=6).run()
        journal.close()

        offsets = [
            r for r in journal.read_segment(0) if r["kind"] == "offsets"
        ]
        assert offsets, "periodic offset records expected"
        assert offsets[-1]["final"] is True
        assert offsets[-1]["offsets"] == full.source_offsets

        # Resume from a mid-run record: the remainder alone is
        # processed and the final offsets agree.
        mid = offsets[0]["offsets"]
        topo2, sink2 = self._topology()
        resumed = StreamRuntime(topo2, start_offsets=mid).run()
        assert resumed.items_skipped == mid["feed"]
        assert resumed.source_offsets == full.source_offsets
        assert len(sink2.items) == 20 - mid["feed"]

    def test_journal_every_validation(self):
        topo, _ = self._topology()
        with pytest.raises(ValueError):
            StreamRuntime(topo, journal_every=0)
