"""Tests for data-item helpers."""

import pytest

from repro.streams import (
    item_arrival,
    item_source,
    item_time,
    iter_attributes,
    make_item,
    payload_of,
)


class TestMakeItem:
    def test_stamps_reserved_keys(self):
        item = make_item({"x": 1}, time=10, arrival=12, source="bus")
        assert item_time(item) == 10
        assert item_arrival(item) == 12
        assert item_source(item) == "bus"
        assert item["x"] == 1

    def test_partial_stamps(self):
        item = make_item({"x": 1}, time=10)
        assert item_arrival(item) == 10  # falls back to event time
        assert item_source(item) is None

    def test_unstamped_time_raises(self):
        with pytest.raises(KeyError):
            item_time(make_item({"x": 1}))

    def test_copies_payload(self):
        payload = {"x": 1}
        item = make_item(payload, time=0)
        item["x"] = 2
        assert payload["x"] == 1


class TestPayloadHelpers:
    def test_payload_of_strips_reserved(self):
        item = make_item({"x": 1, "y": 2}, time=10, source="bus")
        assert payload_of(item) == {"x": 1, "y": 2}

    def test_iter_attributes(self):
        item = make_item({"x": 1}, time=10)
        assert dict(iter_attributes(item)) == {"x": 1}
