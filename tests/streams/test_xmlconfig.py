"""Tests for the XML data-flow description parser."""

import pytest

from repro.streams import (
    Collect,
    StreamRuntime,
    XmlConfigError,
    coerce_attribute,
    make_item,
    parse_topology,
)


def _source_factory(n=3, **_):
    return [make_item({"v": i}, time=i) for i in range(n)]


class _SinkService:
    def __init__(self, label="sink"):
        self.label = label


_COLLECTORS: list[Collect] = []


def _collector_factory(**_):
    collector = Collect()
    _COLLECTORS.append(collector)
    return collector


REGISTRY = {
    "test.Source": _source_factory,
    "test.Collect": _collector_factory,
    "test.Service": _SinkService,
}


class TestCoercion:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("42", 42),
            ("-3", -3),
            ("2.5", 2.5),
            ("true", True),
            ("False", False),
            ("hello", "hello"),
            ("6.2.2", "6.2.2"),
        ],
    )
    def test_coerce(self, raw, expected):
        assert coerce_attribute(raw) == expected


class TestParseTopology:
    def setup_method(self):
        _COLLECTORS.clear()

    def test_full_container(self):
        xml = """
        <container>
          <stream id="s" class="test.Source" n="4"/>
          <queue id="out"/>
          <service id="svc" class="test.Service" label="x"/>
          <process id="p" input="s" output="out">
            <processor class="test.Collect"/>
          </process>
        </container>
        """
        topo = parse_topology(xml, REGISTRY)
        assert "s" in topo.sources
        assert len(topo.sources["s"]) == 4
        assert "out" in topo.queues
        assert topo.services.lookup("svc").label == "x"
        StreamRuntime(topo).run()
        assert [i["v"] for i in _COLLECTORS[0].items] == [0, 1, 2, 3]
        assert len(topo.queues["out"]) == 4

    def test_dotted_path_resolution(self):
        xml = """
        <container>
          <stream id="s" class="test.Source"/>
          <process id="p" input="s">
            <processor class="repro.streams.processors.Collect"/>
          </process>
        </container>
        """
        topo = parse_topology(xml, REGISTRY)
        assert topo.processes["p"].processors[0].__class__.__name__ == "Collect"

    def test_invalid_xml(self):
        with pytest.raises(XmlConfigError, match="invalid XML"):
            parse_topology("<container", REGISTRY)

    def test_wrong_root(self):
        with pytest.raises(XmlConfigError, match="container"):
            parse_topology("<bogus/>", REGISTRY)

    def test_unknown_element(self):
        with pytest.raises(XmlConfigError, match="unknown element"):
            parse_topology("<container><widget/></container>", REGISTRY)

    def test_stream_requires_id(self):
        with pytest.raises(XmlConfigError, match="id"):
            parse_topology(
                '<container><stream class="test.Source"/></container>',
                REGISTRY,
            )

    def test_stream_requires_class(self):
        with pytest.raises(XmlConfigError, match="class"):
            parse_topology(
                '<container><stream id="s"/></container>', REGISTRY
            )

    def test_unresolvable_class(self):
        with pytest.raises(XmlConfigError, match="cannot import"):
            parse_topology(
                '<container><stream id="s" class="no.such.Mod"/></container>',
                REGISTRY,
            )

    def test_missing_attribute_on_module(self):
        with pytest.raises(XmlConfigError, match="no attribute"):
            parse_topology(
                '<container><stream id="s" class="repro.streams.Nope"/>'
                "</container>",
                REGISTRY,
            )

    def test_bare_name_without_registry_entry(self):
        with pytest.raises(XmlConfigError, match="not in the registry"):
            parse_topology(
                '<container><stream id="s" class="Bare"/></container>',
                REGISTRY,
            )

    def test_process_children_must_be_processors(self):
        xml = """
        <container>
          <stream id="s" class="test.Source"/>
          <process id="p" input="s"><thing/></process>
        </container>
        """
        with pytest.raises(XmlConfigError, match="processor"):
            parse_topology(xml, REGISTRY)

    def test_validation_runs(self):
        xml = """
        <container>
          <process id="p" input="ghost">
            <processor class="test.Collect"/>
          </process>
        </container>
        """
        with pytest.raises(ValueError, match="unknown input"):
            parse_topology(xml, REGISTRY)
