"""Tests for runtime supervision: policies, dead letters, breakers."""

import time

import pytest

from repro.obs import Registry
from repro.streams import (
    CircuitBreaker,
    Collect,
    DeadLetterQueue,
    EmitTo,
    ErrorPolicy,
    Process,
    ProcessorTimeout,
    Source,
    StreamRuntime,
    Supervisor,
    Tap,
    Topology,
    Transform,
    make_item,
)


def _items(values, period=10):
    return [
        make_item({"v": v}, time=i * period) for i, v in enumerate(values)
    ]


def _poison(item):
    if item["v"] < 0:
        raise ValueError(f"poisoned item {item['v']}")
    return item


def _topology(values, *, policy=None, extra=()):
    topo = Topology()
    topo.add_source(Source("s", _items(values)))
    sink = Collect()
    topo.add_process(
        Process(
            "p", input="s",
            processors=[Transform(_poison), *extra, sink],
            policy=policy,
        )
    )
    return topo, sink


class TestErrorPolicy:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ErrorPolicy(mode="explode")

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            ErrorPolicy(mode="retry", max_retries=-1)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ErrorPolicy(timeout_s=0)

    def test_backoff_doubles_then_caps(self):
        policy = ErrorPolicy(
            mode="retry", backoff_base_s=0.1, backoff_cap_s=0.35
        )
        assert [policy.backoff_s(k) for k in (1, 2, 3, 4)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.35),
            pytest.approx(0.35),
        ]


class TestCircuitBreakerUnit:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(threshold=3, reset_after_s=100)
        breaker.record_failure(0)
        breaker.record_failure(1)
        breaker.record_success(2)  # resets the streak
        breaker.record_failure(3)
        breaker.record_failure(4)
        assert not breaker.is_open
        breaker.record_failure(5)
        assert breaker.is_open
        assert breaker.open_intervals == [(5, None)]

    def test_open_rejects_until_cooldown(self):
        breaker = CircuitBreaker(threshold=1, reset_after_s=100)
        breaker.record_failure(10)
        assert not breaker.allow(50)
        assert breaker.allow(110)  # half-open trial
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_trial_success_closes_and_ends_interval(self):
        breaker = CircuitBreaker(threshold=1, reset_after_s=100)
        breaker.record_failure(10)
        assert breaker.allow(110)
        breaker.record_success(110)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.open_intervals == [(10, 110)]

    def test_trial_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(threshold=1, reset_after_s=100)
        breaker.record_failure(10)
        assert breaker.allow(110)
        breaker.record_failure(110)
        assert breaker.is_open
        assert not breaker.allow(150)  # clock restarted at 110
        assert breaker.allow(210)


class TestPolicyPrecedence:
    def test_process_policy_beats_named_beats_default(self):
        supervisor = Supervisor(
            default_policy=ErrorPolicy(mode="fail"),
            policies={"named": ErrorPolicy(mode="skip")},
        )
        attached = ErrorPolicy(mode="retry")
        with_own = Process(
            "named", input="s", processors=[Collect()], policy=attached
        )
        by_name = Process("named", input="s", processors=[Collect()])
        unknown = Process("other", input="s", processors=[Collect()])
        assert supervisor.policy_for(with_own) is attached
        assert supervisor.policy_for(by_name).mode == "skip"
        assert supervisor.policy_for(unknown).mode == "fail"


class TestSupervisedRuntime:
    def test_default_policy_fails_like_unsupervised(self):
        topo, _ = _topology([1, -2, 3])
        with pytest.raises(ValueError, match="poisoned"):
            StreamRuntime(topo, supervisor=Supervisor()).run()

    def test_skip_dead_letters_and_continues(self):
        metrics = Registry()
        topo, sink = _topology(
            [1, -2, 3], policy=ErrorPolicy(mode="skip")
        )
        supervisor = Supervisor(metrics=metrics)
        StreamRuntime(topo, supervisor=supervisor).run()
        assert [i["v"] for i in sink.items] == [1, 3]
        assert len(supervisor.dead_letters) == 1
        letter = supervisor.dead_letters.snapshot()[0]
        assert letter.process == "p"
        assert letter.input == "s"
        assert "poisoned item -2" in letter.error
        assert letter.attempts == 1
        counters = metrics.counters()
        assert counters["streams.supervision.errors"] == 1
        assert counters["streams.supervision.dead_letters"] == 1

    def test_retry_exhausts_then_dead_letters(self):
        metrics = Registry()
        topo, sink = _topology(
            [-1, 2], policy=ErrorPolicy(mode="retry", max_retries=2)
        )
        supervisor = Supervisor(metrics=metrics)
        StreamRuntime(topo, supervisor=supervisor).run()
        assert [i["v"] for i in sink.items] == [2]
        letter = supervisor.dead_letters.snapshot()[0]
        assert letter.attempts == 3  # initial try + 2 retries
        counters = metrics.counters()
        assert counters["streams.supervision.retries"] == 2
        assert counters["streams.supervision.errors"] == 3
        backoff = metrics.timings()["streams.supervision.backoff_s"]
        assert backoff.count == 2

    def test_retry_recovers_a_flaky_processor(self):
        failures = {"left": 2}

        def flaky(item):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return item

        topo = Topology()
        topo.add_source(Source("s", _items([7])))
        sink = Collect()
        topo.add_process(
            Process(
                "p", input="s", processors=[Transform(flaky), sink],
                policy=ErrorPolicy(mode="retry", max_retries=3),
            )
        )
        supervisor = Supervisor()
        StreamRuntime(topo, supervisor=supervisor).run()
        assert [i["v"] for i in sink.items] == [7]
        assert len(supervisor.dead_letters) == 0

    def test_soft_timeout_goes_through_the_policy(self):
        # The timeout is cooperative (detected after the chain ran),
        # so the proof is that nothing is *forwarded*: the slow
        # process's output queue stays empty and downstream sees
        # nothing.
        metrics = Registry()
        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        sink = Collect()
        topo.add_process(
            Process(
                "slow", input="s",
                processors=[Tap(lambda item: time.sleep(0.01))],
                output="out",
                policy=ErrorPolicy(mode="skip", timeout_s=0.0005),
            )
        )
        topo.add_process(Process("down", input="out", processors=[sink]))
        supervisor = Supervisor(metrics=metrics)
        StreamRuntime(topo, supervisor=supervisor).run()
        assert sink.items == []
        assert len(topo.queues["out"]) == 0
        letter = supervisor.dead_letters.snapshot()[0]
        assert "ProcessorTimeout" in letter.error
        assert metrics.counters()["streams.supervision.timeouts"] == 1

    def test_failed_attempt_discards_partial_emissions(self):
        def explode(item):
            raise RuntimeError("after emitting")

        topo = Topology()
        topo.add_source(Source("s", _items([1])))
        topo.add_process(
            Process(
                "p", input="s",
                processors=[EmitTo("side"), Transform(explode)],
                policy=ErrorPolicy(mode="skip"),
            )
        )
        StreamRuntime(topo, supervisor=Supervisor()).run()
        side = topo.queues.get("side")
        assert side is None or len(side) == 0


class TestBreakerInRuntime:
    def _run(self, times_and_values, *, threshold=3, reset_s=100):
        topo = Topology()
        topo.add_source(
            Source(
                "s",
                [
                    make_item({"v": v}, time=t)
                    for t, v in times_and_values
                ],
            )
        )
        sink = Collect()
        topo.add_process(
            Process(
                "p", input="s",
                processors=[Transform(_poison), sink],
                policy=ErrorPolicy(mode="skip"),
            )
        )
        metrics = Registry()
        supervisor = Supervisor(
            metrics=metrics,
            breaker_threshold=threshold,
            breaker_reset_s=reset_s,
        )
        StreamRuntime(topo, supervisor=supervisor).run()
        return sink, supervisor, metrics

    def test_open_breaker_short_circuits_to_dlq(self):
        sink, supervisor, metrics = self._run(
            [(0, -1), (1, -2), (2, -3), (10, 4), (20, 5)]
        )
        # Three poisoned items open the breaker; the healthy items at
        # t=10/20 are inside the cooldown and never reach the chain.
        assert sink.items == []
        letters = supervisor.dead_letters.snapshot()
        assert [l.process for l in letters] == [
            "p", "p", "p", "breaker:s", "breaker:s"
        ]
        assert letters[-1].error == "circuit open"
        counters = metrics.counters()
        assert counters["streams.breaker.s.opened"] == 1
        assert counters["streams.breaker.s.short_circuited"] == 2

    def test_half_open_trial_closes_after_cooldown(self):
        sink, supervisor, metrics = self._run(
            [(0, -1), (1, -2), (2, -3), (150, 4), (160, 5)]
        )
        # t=150 is past the 100s cooldown: the trial item flows,
        # succeeds and closes the breaker again.
        assert [i["v"] for i in sink.items] == [4, 5]
        breaker = supervisor.breakers["s"]
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.open_intervals == [(2, 150)]
        assert metrics.gauges()["streams.breaker.s.state"] == 0.0

    def test_final_state_gauge_reports_open(self):
        _, _, metrics = self._run([(0, -1), (1, -2), (2, -3), (10, -4)])
        assert metrics.gauges()["streams.breaker.s.state"] == 1.0


class TestCircuitBreakerHalfOpenEdges:
    """Satellite: half-open edge cases around the cooldown boundary."""

    def test_failure_exactly_at_reset_boundary(self):
        breaker = CircuitBreaker(threshold=1, reset_after_s=100)
        breaker.record_failure(10)
        # 109 is still inside the cooldown; 110 == opened_at +
        # reset_after_s is the first instant the trial flows.
        assert not breaker.allow(109)
        assert breaker.allow(110)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure(110)
        assert breaker.state == CircuitBreaker.OPEN
        # The cooldown clock restarted at the boundary failure.
        assert not breaker.allow(209)
        assert breaker.allow(210)

    def test_success_then_failure_in_half_open(self):
        breaker = CircuitBreaker(threshold=2, reset_after_s=100)
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.is_open
        assert breaker.allow(101)
        breaker.record_success(101)  # trial succeeds: breaker closes
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.open_intervals == [(1, 101)]
        # A single follow-up failure is below threshold again — the
        # half-open trip must not have left a stale failure streak.
        breaker.record_failure(102)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(103)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.open_intervals == [(1, 101), (103, None)]

    def test_repeated_allow_in_half_open_keeps_flowing(self):
        breaker = CircuitBreaker(threshold=1, reset_after_s=50)
        breaker.record_failure(0)
        assert breaker.allow(50)
        # Until the trial's outcome is reported, further arrivals flow.
        assert breaker.allow(51)
        assert breaker.state == CircuitBreaker.HALF_OPEN


class TestBoundedDeadLetterQueue:
    """Satellite: the DLQ evicts oldest at capacity and counts drops."""

    def _letter(self, n):
        from repro.streams import DeadLetter

        return DeadLetter(
            process="p", input="s", item={"v": n}, error="boom",
            attempts=1, arrival=n,
        )

    def test_eviction_keeps_newest(self):
        dlq = DeadLetterQueue(max_size=3)
        for n in range(5):
            dlq.append(self._letter(n))
        assert len(dlq) == 3
        assert dlq.dropped == 2
        assert [letter.arrival for letter in dlq] == [2, 3, 4]

    def test_max_size_validation(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(max_size=0)

    def test_supervisor_counts_dropped_letters(self):
        registry = Registry()
        supervisor = Supervisor(
            dead_letters=DeadLetterQueue(max_size=2), metrics=registry
        )
        for n in range(5):
            supervisor.dead_letter(
                process="p", input_name="s", item=make_item({"v": n}, time=n),
                error="boom", attempts=1, arrival=n,
            )
        counters = registry.counters()
        assert counters["streams.supervision.dead_letters"] == 5
        assert counters["streams.supervision.dlq.dropped"] == 3
        assert len(supervisor.dead_letters) == 2

    def test_unbounded_by_default_for_typical_runs(self):
        # The default capacity is far above anything a test run files.
        dlq = DeadLetterQueue()
        for n in range(100):
            dlq.append(self._letter(n))
        assert len(dlq) == 100
        assert dlq.dropped == 0
