"""Tests for the service registry."""

import pytest

from repro.streams import ServiceRegistry


class TestServiceRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        service = object()
        registry.register("traffic-model", service)
        assert registry.lookup("traffic-model") is service
        assert "traffic-model" in registry
        assert len(registry) == 1
        assert list(registry) == ["traffic-model"]

    def test_duplicate_registration_rejected(self):
        registry = ServiceRegistry()
        registry.register("svc", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("svc", object())

    def test_unknown_lookup(self):
        with pytest.raises(LookupError, match="unknown service"):
            ServiceRegistry().lookup("nope")

    def test_lifecycle_hooks_optional(self):
        class WithHooks:
            def __init__(self):
                self.events = []

            def start(self):
                self.events.append("start")

            def stop(self):
                self.events.append("stop")

        registry = ServiceRegistry()
        hooked = WithHooks()
        registry.register("hooked", hooked)
        registry.register("plain", object())  # no hooks: must not crash
        registry.start_all()
        registry.stop_all()
        assert hooked.events == ["start", "stop"]

    def test_non_callable_start_ignored(self):
        class Odd:
            start = "not callable"

        registry = ServiceRegistry()
        registry.register("odd", Odd())
        registry.start_all()  # must not raise
