"""Tests for the tumbling-window aggregation processor."""

import pytest

from repro.streams import (
    Collect,
    Process,
    Source,
    StreamRuntime,
    Topology,
    TumblingAggregate,
    make_item,
    normalise_result,
)


def _agg(window=60, agg="mean"):
    return TumblingAggregate(
        window,
        key_fn=lambda i: i["sensor"],
        value_fn=lambda i: i["value"],
        agg=agg,
    )


def _item(t, sensor="s1", value=1.0):
    return make_item({"sensor": sensor, "value": value}, time=t)


class TestValidation:
    def test_window_positive(self):
        with pytest.raises(ValueError):
            _agg(window=0)

    def test_known_aggregates_only(self):
        with pytest.raises(ValueError, match="aggregate"):
            _agg(agg="p99")

    def test_out_of_order_rejected(self):
        p = _agg(window=60)
        p.process(_item(100))
        with pytest.raises(ValueError, match="non-decreasing"):
            p.process(_item(10))


class TestAggregation:
    def test_emits_on_bucket_boundary(self):
        p = _agg(window=60)
        assert p.process(_item(10, value=2.0)) is None
        assert p.process(_item(20, value=4.0)) is None
        emitted = normalise_result(p.process(_item(70, value=9.0)))
        assert len(emitted) == 1
        assert emitted[0]["@time"] == 60
        assert emitted[0]["value"] == pytest.approx(3.0)
        assert emitted[0]["count"] == 2

    def test_groups_by_key(self):
        p = _agg(window=60, agg="sum")
        p.process(_item(10, sensor="a", value=1.0))
        p.process(_item(20, sensor="b", value=2.0))
        p.process(_item(30, sensor="a", value=3.0))
        emitted = normalise_result(p.process(_item(70)))
        by_key = {i["key"]: i for i in emitted}
        assert by_key["a"]["value"] == 4.0
        assert by_key["b"]["value"] == 2.0

    @pytest.mark.parametrize(
        "agg,expected", [("mean", 2.0), ("sum", 6.0), ("min", 1.0), ("max", 3.0)]
    )
    def test_aggregates(self, agg, expected):
        p = _agg(window=60, agg=agg)
        for v in (1.0, 2.0, 3.0):
            p.process(_item(10, value=v))
        out = normalise_result(p.process(_item(70)))
        assert out[0]["value"] == pytest.approx(expected)

    def test_skipped_buckets(self):
        p = _agg(window=60)
        p.process(_item(10, value=5.0))
        emitted = normalise_result(p.process(_item(500, value=7.0)))
        # Only the non-empty bucket is emitted.
        assert len(emitted) == 1
        assert emitted[0]["value"] == 5.0

    def test_flush_trailing_window(self):
        p = _agg(window=60)
        p.process(_item(10, value=5.0))
        out = p.flush()
        assert len(out) == 1
        assert out[0]["value"] == 5.0
        assert p.flush() == []

    def test_flush_empty(self):
        assert _agg().flush() == []


class TestInTopology:
    def test_mediator_style_aggregation(self):
        # Raw 1-second readings aggregated to one item per sensor per
        # minute: the mediator behaviour the paper describes.
        topo = Topology()
        raw = [
            _item(t, sensor=f"s{(t // 10) % 2}", value=float(t))
            for t in range(0, 180, 10)
        ]
        topo.add_source(Source("raw", raw))
        sink = Collect()
        topo.add_process(
            Process(
                "mediator", input="raw",
                processors=[_agg(window=60), sink],
            )
        )
        StreamRuntime(topo).run()
        # Two completed buckets x two sensors = 4 aggregate items (the
        # trailing bucket needs an explicit flush).
        assert len(sink.items) == 4
        assert all("value" in i and "count" in i for i in sink.items)


class TestThrottle:
    def test_validates_interval(self):
        from repro.streams import Throttle

        with pytest.raises(ValueError):
            Throttle(0, key_fn=lambda i: i["sensor"])

    def test_rate_limits_per_key(self):
        from repro.streams import Throttle

        p = Throttle(60, key_fn=lambda i: i["sensor"])
        assert p.process(_item(0)) is not None
        assert p.process(_item(30)) is None         # inside the span
        assert p.process(_item(60)) is not None     # next span
        assert p.process(_item(70, sensor="s2")) is not None  # other key

    def test_independent_key_clocks(self):
        from repro.streams import Throttle

        p = Throttle(100, key_fn=lambda i: i["sensor"])
        p.process(_item(0, sensor="a"))
        assert p.process(_item(50, sensor="b")) is not None
        assert p.process(_item(60, sensor="a")) is None


class TestDeduplicate:
    def test_validates_max_keys(self):
        from repro.streams import Deduplicate

        with pytest.raises(ValueError):
            Deduplicate(key_fn=lambda i: i["sensor"], max_keys=1)

    def test_drops_duplicates(self):
        from repro.streams import Deduplicate

        p = Deduplicate(key_fn=lambda i: (i["sensor"], i["@time"]))
        first = _item(10)
        assert p.process(dict(first)) is not None
        assert p.process(dict(first)) is None
        assert p.process(_item(11)) is not None

    def test_eviction_bounds_memory(self):
        from repro.streams import Deduplicate

        p = Deduplicate(key_fn=lambda i: i["@time"], max_keys=10)
        for t in range(25):
            p.process(_item(t))
        assert len(p._seen) <= 10
        # Recently seen keys are still deduplicated.
        assert p.process(_item(24)) is None
