"""Determinism contract of the sharded runtime: an N-worker run is
byte-identical to the single-process loop.

Same scenario scale as the crash-parity suite (``tests/recovery``);
the fingerprint deliberately excludes the ``shard.*`` / ``recovery.*``
namespaces (bookkeeping of *how* the run executed) and compares
everything the run *produced*.
"""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem

SCENARIO = dict(
    seed=3,
    n_buses=12,
    n_lines=3,
    n_intersections=10,
    n_incidents=3,
    incident_window=(0, 3000),
)
CONFIG = dict(n_participants=12, seed=3, checkpoint_interval=3)
STEPS = 12
END = STEPS * 300


def build_system(**overrides):
    config = dict(CONFIG)
    config.update(overrides)
    return UrbanTrafficSystem(
        DublinScenario(ScenarioConfig(**SCENARIO)), SystemConfig(**config)
    )


def fingerprint(system, report):
    """Everything the run *produced*, serialised for equality checks."""
    ce = {}
    for region, log in report.logs.items():
        seen = set()
        for snap in log.snapshots:
            for name, occs in snap.occurrences.items():
                for occ in occs:
                    seen.add((name, occ.key, occ.time))
        ce[region] = sorted(map(repr, seen))
    counters = report.metrics.get("counters", {})
    return {
        "ce": ce,
        "alerts": [repr(a) for a in report.console.alerts],
        "degraded": repr(report.degraded),
        "p_i": repr(
            sorted(system.crowd.aggregator.error_probabilities.items())
        ),
        "crowd": (
            report.crowd_resolutions,
            report.crowd_unresolved,
            report.crowd_suppressed,
        ),
        "rewards": repr(sorted(report.rewards.items())),
        "flow": repr(sorted(report.flow_estimates.items())),
        "items": {
            k: v
            for k, v in counters.items()
            if k.startswith(
                ("process.", "crowd.", "faults.", "rtec.cache.", "ingest.events")
            )
        },
    }


@pytest.fixture(scope="module")
def golden():
    """Fingerprint of the single-process run."""
    system = build_system()
    report = system.run(0, END)
    return fingerprint(system, report)


class TestShardedParity:
    def test_four_shard_run_matches_single_process(self, golden, tmp_path):
        system = build_system(sharded=True, shard_dir=str(tmp_path))
        report = system.run(0, END)
        assert fingerprint(system, report) == golden
        assert report.shard_events == []

    def test_worker_metrics_are_namespaced_per_shard(self, tmp_path):
        system = build_system(sharded=True, shard_dir=str(tmp_path))
        report = system.run(0, END)
        counters = report.metrics["counters"]
        regions = list(system.engines)
        assert len(regions) >= 2
        for region in regions:
            assert counters[f"shard.{region}.queries"] == STEPS
            assert counters[f"shard.{region}.recovery.checkpoint.writes"] >= 1
        # The merge prefixes instead of overwriting: per-region query
        # counts survive side by side.
        total = sum(counters[f"shard.{region}.queries"] for region in regions)
        assert total == STEPS * len(regions)

    def test_per_shard_recovery_state_on_disk(self, tmp_path):
        system = build_system(sharded=True, shard_dir=str(tmp_path))
        system.run(0, END)
        for region in system.engines:
            shard_dir = tmp_path / f"shard-{region}"
            assert (shard_dir / "checkpoint-00000000.ckpt").exists()
            assert list(shard_dir.glob("journal-*.wal"))

    def test_sharded_excludes_thread_parallel_mode(self):
        with pytest.raises(ValueError):
            SystemConfig(sharded=True, parallel_regions=True)

    def test_recovery_and_sharded_are_mutually_exclusive(self, tmp_path):
        system = build_system(sharded=True, shard_dir=str(tmp_path))
        with pytest.raises(ValueError, match="per-shard recovery"):
            system.run(0, END, recovery=object())
