"""Tests for the shard message bus and its transport abstraction."""

import pytest

from repro.shard import (
    PipeTransport,
    ShardBus,
    ShardConnectionLost,
)


class TestPipeTransport:
    def test_pair_roundtrip_both_directions(self):
        ours, theirs = PipeTransport().pair()
        ours.send(("query", {"step": 3, "q": 900}))
        assert theirs.recv() == ("query", {"step": 3, "q": 900})
        theirs.send(("snapshot", {"region": "north"}))
        assert ours.recv() == ("snapshot", {"region": "north"})
        ours.close()
        theirs.close()

    def test_poll_reports_readiness(self):
        ours, theirs = PipeTransport().pair()
        assert not ours.poll(0.0)
        theirs.send(("heartbeat", {}))
        assert ours.poll(1.0)
        ours.recv()
        assert not ours.poll(0.0)
        ours.close()
        theirs.close()

    def test_peer_close_normalised_to_connection_lost(self):
        ours, theirs = PipeTransport().pair()
        theirs.close()
        with pytest.raises(ShardConnectionLost):
            ours.recv()

    def test_endpoint_close_is_idempotent(self):
        ours, theirs = PipeTransport().pair()
        ours.close()
        ours.close()
        theirs.close()


class TestShardBus:
    def test_send_addresses_one_shard(self):
        bus = ShardBus(PipeTransport())
        worker_ends = {
            region: bus.open_channel(region) for region in ("north", "south")
        }
        bus.send("north", "query", step=1, q=300)
        assert worker_ends["north"].recv() == ("query", {"step": 1, "q": 300})
        assert not worker_ends["south"].poll(0.0)
        bus.close()

    def test_publish_fans_out_to_every_shard(self):
        bus = ShardBus(PipeTransport())
        regions = ("north", "south", "west")
        worker_ends = {r: bus.open_channel(r) for r in regions}
        failures = bus.publish("feed", step=2, sdes=[])
        assert failures == {}
        for end in worker_ends.values():
            assert end.recv() == ("feed", {"step": 2, "sdes": []})
        bus.close()

    def test_publish_reports_dead_channels_without_raising(self):
        bus = ShardBus(PipeTransport())
        alive = bus.open_channel("north")
        dead = bus.open_channel("south")
        dead.close()
        # Fill no buffers: a closed peer only surfaces on send for
        # pipes once the fd is really gone, so close our side's peer
        # handle and force the failure path deterministically.
        bus.endpoint("south").close()
        failures = bus.publish("feed", step=0, sdes=[])
        assert set(failures) == {"south"}
        assert isinstance(failures["south"], ShardConnectionLost)
        assert alive.recv()[0] == "feed"
        bus.close()

    def test_open_channel_replaces_previous_channel(self):
        bus = ShardBus(PipeTransport())
        first = bus.open_channel("north")
        second = bus.open_channel("north")
        bus.send("north", "query", step=9, q=2700)
        assert second.recv() == ("query", {"step": 9, "q": 2700})
        with pytest.raises(ShardConnectionLost):
            first.recv()  # old channel was closed on replacement
        assert bus.shards() == ["north"]
        bus.close()

    def test_detach_forgets_the_shard(self):
        bus = ShardBus(PipeTransport())
        bus.open_channel("north")
        bus.detach("north")
        bus.detach("north")  # idempotent
        assert bus.shards() == []
        with pytest.raises(KeyError):
            bus.send("north", "query", step=0, q=0)
