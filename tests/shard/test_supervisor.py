"""Unit tests for the cross-process shard supervisor."""

import pytest

from repro.obs import Registry
from repro.shard import ShardSupervisor
from repro.system.degradation import DegradationManager


class TestRestartBudget:
    def test_allows_restarts_up_to_budget(self):
        sup = ShardSupervisor(max_restarts=3)
        for death in range(1, 4):
            assert sup.record_death("north", step=death, q=death * 300, reason="killed")
        assert not sup.is_failed("north")

    def test_death_past_budget_latches_breaker_open(self):
        sup = ShardSupervisor(max_restarts=1)
        assert sup.record_death("north", 1, 300, "killed")
        assert not sup.record_death("north", 2, 600, "killed again")
        assert sup.is_failed("north")
        assert sup.failed_regions() == ["north"]
        failed = [e for e in sup.events if e["event"] == "failed"]
        assert failed == [
            {
                "event": "failed",
                "region": "north",
                "step": 2,
                "q": 600,
                "reason": "killed again",
                "deaths": 2,
            }
        ]

    def test_zero_budget_fails_on_first_death(self):
        sup = ShardSupervisor(max_restarts=0)
        assert not sup.record_death("north", 0, 0, "killed")
        assert sup.is_failed("north")

    def test_budgets_are_per_region(self):
        sup = ShardSupervisor(max_restarts=1)
        sup.record_death("north", 1, 300, "x")
        sup.record_death("north", 2, 600, "x")
        assert sup.record_death("south", 1, 300, "x")
        assert sup.failed_regions() == ["north"]

    def test_open_breaker_never_resets_within_a_run(self):
        sup = ShardSupervisor(max_restarts=0)
        sup.record_death("north", 0, 0, "x")
        # Even an absurdly late event-time query leaves it open.
        assert sup.breaker_for("north").is_open


class TestBackoff:
    def test_exponential_schedule_doubles_per_death(self):
        sup = ShardSupervisor(backoff_base_s=0.05, backoff_cap_s=10.0)
        observed = []
        for _ in range(4):
            sup.record_death("north", 0, 0, "x")
            observed.append(sup.backoff_s("north"))
        assert observed == [0.05, 0.1, 0.2, 0.4]

    def test_backoff_is_capped(self):
        sup = ShardSupervisor(backoff_base_s=1.0, backoff_cap_s=2.0)
        for _ in range(6):
            sup.record_death("north", 0, 0, "x")
        assert sup.backoff_s("north") == 2.0


class TestWiring:
    def test_failure_forces_degradation_outage(self):
        degradation = DegradationManager()
        sup = ShardSupervisor(max_restarts=0, degradation=degradation)
        sup.record_death("north", step=4, q=1200, reason="killed")
        assert degradation.is_degraded("shard:north")
        assert degradation.intervals["shard:north"] == [(1200, None)]
        # Forced outages never recover from arrival accounting.
        degradation.observe(1500, {"shard:north": 99})
        assert degradation.is_degraded("shard:north")

    def test_metrics_namespace(self):
        metrics = Registry()
        sup = ShardSupervisor(max_restarts=1, metrics=metrics)
        sup.record_death("north", 1, 300, "x")
        sup.record_restart("north", 1, 300)
        sup.record_death("north", 2, 600, "x")
        counters = metrics.counters()
        assert counters["shard.deaths"] == 2
        assert counters["shard.north.deaths"] == 2
        assert counters["shard.restarts"] == 1
        assert counters["shard.north.restarts"] == 1
        assert counters["shard.failed"] == 1
        assert metrics.gauge("shard.breaker.north.state").value == 1.0

    def test_restart_event_carries_attempt_number(self):
        sup = ShardSupervisor(max_restarts=5)
        for attempt in (1, 2):
            sup.record_death("north", attempt, attempt * 300, "x")
            sup.record_restart("north", attempt, attempt * 300)
        attempts = [e["attempt"] for e in sup.events]
        assert attempts == [1, 2]

    def test_heartbeat_age_gauge_and_timing(self):
        metrics = Registry()
        sup = ShardSupervisor(metrics=metrics)
        sup.observe_heartbeat_age("north", 0.02)
        sup.observe_heartbeat_age("north", 0.04)
        assert metrics.gauge("shard.north.heartbeat_age_s").value == 0.04
        assert metrics.timing("shard.heartbeat_age_s").count == 2

    def test_breaker_state_gauges_cover_all_regions(self):
        metrics = Registry()
        sup = ShardSupervisor(max_restarts=0, metrics=metrics)
        sup.breaker_for("south")
        sup.record_death("north", 0, 0, "x")
        sup.record_breaker_states()
        assert metrics.gauge("shard.breaker.north.state").value == 1.0
        assert metrics.gauge("shard.breaker.south.state").value == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_restarts=-1),
            dict(backoff_base_s=-0.1),
            dict(backoff_cap_s=-1.0),
            dict(liveness_timeout_s=0.0),
        ],
    )
    def test_rejects_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            ShardSupervisor(**kwargs)
