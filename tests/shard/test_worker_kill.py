"""Chaos tests: SIGKILL a shard worker mid-run and demand parity.

The contract (see ``docs/robustness.md``): killing any one worker —
mid-step or mid-checkpoint-write, leaving a torn file — restarts that
shard from its own newest valid checkpoint plus at most one journal
segment, while sibling shards keep flowing, and the run's final output
is byte-identical to the unharmed single-process run.  When the
restart budget is exhausted the shard's breaker latches open, the
region enters the degradation timeline as ``shard:<region>``, and the
survivors still finish their own regions intact.
"""

import pytest

from repro.faults import CrashInjector

from .test_sharded_parity import (
    CONFIG,
    END,
    STEPS,
    build_system,
    fingerprint,
    golden,  # noqa: F401  (module-scoped fixture reused here)
)

INTERVAL = CONFIG["checkpoint_interval"]

# (region, step to kill at, phase) — covers every region once and both
# crash phases; checkpoint-phase kills land on interval steps so the
# torn-file fallback path actually runs.
KILL_MATRIX = [
    ("north", 5, "step"),
    ("south", 4, "checkpoint"),
    ("central", 11, "step"),
    ("west", 9, "checkpoint"),
]


def sharded_system(tmp_path, crash_plans, **overrides):
    system = build_system(
        sharded=True,
        shard_dir=str(tmp_path),
        shard_restart_backoff_s=0.01,
        **overrides,
    )
    system.shard_crash_plans = crash_plans
    return system


@pytest.mark.chaos
class TestWorkerKill:
    @pytest.mark.parametrize("region,kill_step,phase", KILL_MATRIX)
    def test_sigkill_recovers_with_identical_output(
        self, golden, tmp_path, region, kill_step, phase
    ):
        system = sharded_system(
            tmp_path,
            {
                region: [
                    CrashInjector(
                        at_step=kill_step, phase=phase, mode="sigkill"
                    )
                ]
            },
        )
        report = system.run(0, END)
        assert fingerprint(system, report) == golden
        counters = report.metrics["counters"]
        assert counters["shard.restarts"] == 1
        assert counters[f"shard.{region}.restarts"] == 1
        assert counters[f"shard.{region}.recovery.restore.count"] == 1
        # Bounded replay: at most one journal segment, i.e. no more
        # than checkpoint_interval steps re-executed.
        assert (
            counters.get(f"shard.{region}.recovery.replay.steps", 0)
            <= INTERVAL
        )
        if phase == "checkpoint":
            # The kill left a torn checkpoint file; the restore must
            # have rejected it and fallen back to an older snapshot.
            assert (
                counters[f"shard.{region}.recovery.restore.fallbacks"] >= 1
            )
        restarts = [
            e for e in report.shard_events if e["event"] == "restart"
        ]
        assert [(e["region"], e["attempt"]) for e in restarts] == [
            (region, 1)
        ]

    def test_restart_storm_fails_shard_but_not_siblings(
        self, golden, tmp_path
    ):
        # Two armed injectors: the second one ships with the restore
        # payload, so the restarted worker dies again re-executing the
        # same step — exhausting a budget of one restart.
        system = sharded_system(
            tmp_path,
            {
                "north": [
                    CrashInjector(at_step=4, phase="step", mode="sigkill"),
                    CrashInjector(at_step=4, phase="step", mode="sigkill"),
                ]
            },
            shard_max_restarts=1,
        )
        report = system.run(0, END)
        events = [(e["event"], e["region"]) for e in report.shard_events]
        assert events == [("restart", "north"), ("failed", "north")]
        counters = report.metrics["counters"]
        assert counters["shard.failed"] == 1
        assert counters["shard.north.deaths"] == 2
        gauges = report.metrics["gauges"]
        assert gauges["shard.breaker.north.state"] == 1.0
        # The dead region is a forced outage on the degradation
        # timeline, open until end of run.
        assert report.degraded["shard:north"] == [(1200, None)]
        # Siblings completed every step and match the unharmed run.
        golden_fp = golden
        fp = fingerprint(system, report)
        for region in system.engines:
            if region == "north":
                continue
            assert fp["ce"][region] == golden_fp["ce"][region]
        # North stopped after its failure: it has strictly fewer
        # snapshots than the full run.
        assert len(report.logs["north"].snapshots) < STEPS

    def test_failed_shard_suppresses_alerts_without_stalling(
        self, tmp_path
    ):
        system = sharded_system(
            tmp_path,
            {
                "north": [
                    CrashInjector(at_step=4, phase="step", mode="sigkill"),
                    CrashInjector(at_step=4, phase="step", mode="sigkill"),
                ]
            },
            shard_max_restarts=1,
        )
        report = system.run(0, END)
        # The run completed (no exception, all steps accounted): every
        # surviving region has a snapshot per step.
        for region in system.engines:
            if region == "north":
                continue
            assert len(report.logs[region].snapshots) == STEPS
        assert "shard:north" in report.degraded
