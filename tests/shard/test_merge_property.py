"""Property test: the deterministic merge is invariant under worker
completion order.

The coordinator collects per-shard snapshots as workers finish —
potentially in any order — and :func:`merge_in_region_order` must
always emit them in the configured region order, so an N-worker run is
byte-identical to the single-process loop regardless of scheduling.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.shard import merge_in_region_order

REGION_NAMES = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


@given(regions=REGION_NAMES, data=st.data())
def test_merge_invariant_under_completion_order(regions, data):
    results = {region: object() for region in regions}
    completion_order = data.draw(st.permutations(regions))
    # Rebuild the results mapping in the drawn completion order — dict
    # insertion order is exactly what a naive merge would leak.
    shuffled = {region: results[region] for region in completion_order}
    merged = merge_in_region_order(shuffled, regions)
    assert merged == [(region, results[region]) for region in regions]


@given(regions=REGION_NAMES, data=st.data())
def test_merge_skips_regions_without_results(regions, data):
    missing = set(data.draw(st.sets(st.sampled_from(regions))))
    results = {r: object() for r in regions if r not in missing}
    completion_order = data.draw(st.permutations(list(results)))
    shuffled = {region: results[region] for region in completion_order}
    merged = merge_in_region_order(shuffled, regions)
    assert [region for region, _ in merged] == [
        region for region in regions if region not in missing
    ]
