"""Seed-plumbing audit: every generator is a pure function of its
explicit seed/rng — no global random state, no call-order coupling.

The regression behind ``TestRepeatedCalls``: the bus fleet simulator
used to mutate bus kinematics across ``events`` calls, so a second
generation of the same span continued from the first call's end state
instead of reproducing it."""

import random

from repro.dublin import DublinScenario, ScenarioConfig
from repro.scenarios import compile_scenario, get_scenario


def _stream_repr(data):
    return [repr(e) for e in data.events] + [repr(f) for f in data.facts]


class TestRepeatedCalls:
    def test_bus_events_identical_across_calls(self):
        scenario = DublinScenario(
            ScenarioConfig(seed=5, n_buses=6, n_lines=2, n_intersections=6)
        )
        first = list(scenario.buses.events(0, 1200))
        second = list(scenario.buses.events(0, 1200))
        assert [repr(pair) for pair in first] == [
            repr(pair) for pair in second
        ]

    def test_scats_events_identical_across_calls(self):
        scenario = DublinScenario(
            ScenarioConfig(seed=5, n_buses=6, n_lines=2, n_intersections=6)
        )
        first = list(scenario.scats.events(0, 1200))
        second = list(scenario.scats.events(0, 1200))
        assert [repr(e) for e in first] == [repr(e) for e in second]

    def test_generate_identical_across_calls(self):
        scenario = DublinScenario(
            ScenarioConfig(seed=5, n_buses=6, n_lines=2, n_intersections=6)
        )
        assert _stream_repr(scenario.generate(0, 1200)) == _stream_repr(
            scenario.generate(0, 1200)
        )


class TestExplicitRng:
    def test_simulators_accept_explicit_rng(self):
        scenario = DublinScenario(
            ScenarioConfig(seed=5, n_buses=4, n_lines=2, n_intersections=6)
        )
        a = list(scenario.buses.events(0, 600, rng=random.Random(9)))
        b = list(scenario.buses.events(0, 600, rng=random.Random(9)))
        assert [repr(p) for p in a] == [repr(p) for p in b]
        c = list(scenario.scats.events(0, 600, rng=random.Random(9)))
        d = list(scenario.scats.events(0, 600, rng=random.Random(9)))
        assert [repr(e) for e in c] == [repr(e) for e in d]

    def test_global_random_state_untouched(self):
        """Generating a scenario must not consume or reseed the
        process-global random module."""
        random.seed(1234)
        before = random.getstate()
        scenario = compile_scenario(get_scenario("grid_rush"))
        scenario.generate(27900, 29100)
        assert random.getstate() == before


class TestSameSeedSameBytes:
    def test_two_same_seed_runs_byte_identical(self):
        spec = get_scenario("radial_storm")
        a = compile_scenario(spec).generate(spec.start, spec.start + 1800)
        b = compile_scenario(spec).generate(spec.start, spec.start + 1800)
        assert _stream_repr(a) == _stream_repr(b)

    def test_different_seed_differs(self):
        spec = get_scenario("radial_storm")
        from dataclasses import replace

        other = replace(spec, seed=spec.seed + 1)
        a = compile_scenario(spec).generate(spec.start, spec.start + 1200)
        b = compile_scenario(other).generate(spec.start, spec.start + 1200)
        assert _stream_repr(a) != _stream_repr(b)
