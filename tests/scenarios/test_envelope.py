"""Envelope clause semantics, checked against a stub report — band
inclusion, absence bands, degraded-seconds bounds, unchecked parity
failing closed."""

import pytest

from repro.scenarios import EnvelopeSpec, check_envelope


class StubConsole:
    def __init__(self, counts):
        self._counts = counts

    def counts(self):
        return dict(self._counts)


class StubReport:
    """Just enough of SystemReport for check_envelope."""

    def __init__(
        self,
        *,
        occurrences=None,
        alerts=None,
        mean_s=0.001,
        crowd_resolutions=0,
        degraded=None,
    ):
        self._occurrences = occurrences or {}
        self.console = StubConsole(alerts or {})
        self.mean_recognition_time = mean_s
        self.crowd_resolutions = crowd_resolutions
        self.degraded = degraded or {}

    def total_occurrences(self, name):
        return self._occurrences.get(name, 0)


class TestClauses:
    def test_all_pass(self):
        envelope = EnvelopeSpec(
            occurrences={"agree": (5, 20)},
            alerts={"bus congestion": (1, 10)},
            max_mean_recognition_ms=50.0,
            crowd_resolutions=(0, 4),
            parity=("legacy",),
        )
        report = StubReport(
            occurrences={"agree": 7},
            alerts={"bus congestion": 2},
            crowd_resolutions=1,
        )
        result = check_envelope(
            envelope,
            report,
            scenario="s",
            run_end=600,
            parity={"legacy": True},
        )
        assert result.passed
        assert len(result.clauses) == 5

    def test_band_violation_fails(self):
        envelope = EnvelopeSpec(
            occurrences={"agree": (5, 20)}, parity=()
        )
        report = StubReport(occurrences={"agree": 40})
        result = check_envelope(
            envelope, report, scenario="s", run_end=600, parity={}
        )
        assert not result.passed
        assert result.failures[0].subject == "agree"

    def test_absence_band(self):
        envelope = EnvelopeSpec(
            alerts={"scats congestion": (0, 0)}, parity=()
        )
        quiet = StubReport(alerts={})
        noisy = StubReport(alerts={"scats congestion": 3})
        assert check_envelope(
            envelope, quiet, scenario="s", run_end=1, parity={}
        ).passed
        assert not check_envelope(
            envelope, noisy, scenario="s", run_end=1, parity={}
        ).passed

    def test_latency_bound(self):
        envelope = EnvelopeSpec(max_mean_recognition_ms=1.0, parity=())
        slow = StubReport(mean_s=0.5)
        result = check_envelope(
            envelope, slow, scenario="s", run_end=1, parity={}
        )
        assert not result.passed

    def test_degraded_bounds(self):
        envelope = EnvelopeSpec(degraded=(("scats", 500, 2000),), parity=())
        report = StubReport(degraded={"scats": [(100, 1200)]})
        assert check_envelope(
            envelope, report, scenario="s", run_end=3000, parity={}
        ).passed
        # Open interval counts to the end of the run.
        open_report = StubReport(degraded={"scats": [(100, None)]})
        result = check_envelope(
            envelope, open_report, scenario="s", run_end=3000, parity={}
        )
        assert not result.passed  # 2900 s > max 2000 s

    def test_missing_feed_fails_min_bound(self):
        envelope = EnvelopeSpec(degraded=(("scats", 1, None),), parity=())
        report = StubReport(degraded={})
        assert not check_envelope(
            envelope, report, scenario="s", run_end=3000, parity={}
        ).passed

    def test_unchecked_parity_fails_closed(self):
        envelope = EnvelopeSpec(parity=("legacy", "sharded2"))
        report = StubReport()
        result = check_envelope(
            envelope, report, scenario="s", run_end=1, parity=None
        )
        assert not result.passed
        assert all(c.observed == "unchecked" for c in result.clauses)

    def test_diverged_parity_fails(self):
        envelope = EnvelopeSpec(parity=("legacy",))
        report = StubReport()
        result = check_envelope(
            envelope,
            report,
            scenario="s",
            run_end=1,
            parity={"legacy": False},
        )
        assert not result.passed
        assert result.failures[0].observed == "DIVERGED"


class TestEnvelopeSpecValidation:
    def test_bad_band_rejected(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            EnvelopeSpec(occurrences={"agree": (9, 3)})

    def test_round_trip(self):
        envelope = EnvelopeSpec(
            occurrences={"agree": (1, 5)},
            alerts={"bus congestion": (0, 0)},
            degraded=(("scats", 100, None),),
            crowd_resolutions=(0, 3),
            max_mean_recognition_ms=10.0,
            parity=("legacy", "interpreted"),
        )
        assert EnvelopeSpec.from_mapping(envelope.to_mapping()) == envelope

    def test_degraded_two_tuple_defaults_open(self):
        envelope = EnvelopeSpec(degraded=(("scats", 100),))
        assert envelope.degraded == (("scats", 100, None),)
