"""The scenario acceptance matrix.

Two tiers:

* ``TestScenarioSmoke`` stays in tier-1 — a miniature of the matrix
  (two non-sharded scenarios, full envelopes with parity) that keeps
  the whole DSL → compile → run → envelope path exercised on every
  push in a few seconds.
* ``TestScenarioMatrix`` carries the ``scenario_matrix`` marker — the
  full library, every scenario at its declared duration with every
  declared parity leg (including the two-shard process runtime), run
  by the dedicated CI job.
"""

import pytest

from repro.scenarios import (
    SCENARIO_LIBRARY,
    get_scenario,
    run_scenario,
)


def _assert_envelope(run):
    assert run.passed, "\n" + run.envelope.format()


class TestScenarioSmoke:
    """Tier-1 miniature: full acceptance for two cheap scenarios."""

    def test_radial_storm_envelope(self):
        _assert_envelope(run_scenario(get_scenario("radial_storm")))

    def test_blackout_chaos_envelope(self):
        _assert_envelope(run_scenario(get_scenario("grid_blackout_chaos")))

    def test_no_parity_fails_closed(self):
        run = run_scenario(
            get_scenario("radial_storm"), check_parity=False
        )
        assert not run.passed
        assert all(
            clause.kind == "parity" for clause in run.envelope.failures
        )


@pytest.mark.scenario_matrix
class TestScenarioMatrix:
    """The full matrix — one test per library scenario."""

    @pytest.mark.parametrize(
        "name", [spec.name for spec in SCENARIO_LIBRARY]
    )
    def test_scenario_envelope(self, name):
        _assert_envelope(run_scenario(get_scenario(name)))

    def test_matrix_covers_three_families(self):
        assert (
            len({spec.topology.family for spec in SCENARIO_LIBRARY}) >= 3
        )
