"""Cross-matrix execution-path parity over generated scenarios.

Extends the golden-trace harness's interval serialisation
(``tests/golden/record_golden.serialise_snapshot``) from the one
recorded Dublin miniature to DSL-generated scenarios of all three
topology families: for each scenario, the legacy (recompute), the
incremental, the interpreted (compiled rules off) and the two-shard
sharded pipelines must produce identical CE output — at the engine
level snapshot-for-snapshot (fluent intervals included), and at the
system level on the full produced fingerprint (alerts, crowd
outcomes, rewards).
"""

from dataclasses import replace

import pytest

from repro.core import RTEC
from repro.core.traffic import (
    build_traffic_definitions,
    default_traffic_params,
)
from repro.scenarios import (
    GROUPS2,
    ce_fingerprint,
    compile_scenario,
    get_scenario,
)
from repro.scenarios.runner import _base_config, _run_variant
from tests.golden.record_golden import serialise_snapshot

#: One scenario per topology family.
PARITY_SCENARIOS = ("grid_rush", "radial_storm", "multi_centre_stadium")


def _engine_trace(scenario, data, *, incremental, compiled):
    definitions = build_traffic_definitions(
        scenario.topology, adaptive=True
    )
    engine = RTEC(
        definitions,
        window=600,
        step=300,
        start=data.start,
        params=default_traffic_params(),
        incremental=incremental,
        compiled=compiled,
    )
    engine.feed(data.events, data.facts)
    return [
        serialise_snapshot(snapshot) for snapshot in engine.run(data.end)
    ]


@pytest.mark.parametrize("name", PARITY_SCENARIOS)
class TestEngineIntervalParity:
    """Snapshot-level: identical fluent intervals and occurrences."""

    def test_legacy_and_interpreted_match_incremental(self, name):
        spec = get_scenario(name)
        scenario = compile_scenario(spec)
        data = scenario.generate(spec.start, spec.start + 1800)
        baseline = _engine_trace(
            scenario, data, incremental=True, compiled=True
        )
        legacy = _engine_trace(
            scenario, data, incremental=False, compiled=True
        )
        interpreted = _engine_trace(
            scenario, data, incremental=True, compiled=False
        )
        assert legacy == baseline
        assert interpreted == baseline


@pytest.mark.parametrize("name", PARITY_SCENARIOS)
class TestSystemPathParity:
    """System-level: the four execution paths produce one output."""

    def test_quad_parity(self, name):
        spec = get_scenario(name)
        start, end = spec.start, spec.start + 1800
        config = _base_config(spec)
        _, baseline = _run_variant(spec, config, start, end)
        baseline_fp = ce_fingerprint(baseline)

        _, legacy = _run_variant(
            spec, replace(config, incremental=False), start, end
        )
        assert ce_fingerprint(legacy) == baseline_fp

        _, interpreted = _run_variant(
            spec, replace(config, compiled_rules=False), start, end
        )
        assert ce_fingerprint(interpreted) == baseline_fp

        # The two-shard legs share one grouping so the comparison
        # isolates the process topology (a different grouping may
        # legitimately change cross-entity CEs).
        _, grouped = _run_variant(
            spec, replace(config, region_groups=GROUPS2), start, end
        )
        _, sharded = _run_variant(
            spec,
            replace(config, region_groups=GROUPS2, sharded=True),
            start,
            end,
        )
        assert ce_fingerprint(sharded) == ce_fingerprint(grouped)
