"""The ``scenarios`` CLI surface and the matrix HTML report."""

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    get_scenario,
    render_matrix_html,
    run_matrix,
    write_matrix_report,
)


@pytest.fixture(scope="module")
def small_matrix():
    """Two scenarios, envelopes evaluated without parity legs (the
    report must render FAIL rows too)."""
    return run_matrix(
        [get_scenario("radial_storm"), get_scenario("grid_weather_crawl")],
        check_parity=False,
    )


class TestMatrixReport:
    def test_html_is_standalone_and_complete(self, small_matrix):
        html_text = render_matrix_html(small_matrix)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "radial_storm" in html_text
        assert "grid_weather_crawl" in html_text
        # Parity clauses were skipped, so the verdict is FAIL and the
        # clause tables must show the unchecked rows.
        assert "FAIL" in html_text
        assert "unchecked" in html_text
        assert "<script" not in html_text

    def test_write_matrix_report(self, small_matrix, tmp_path):
        path = write_matrix_report(small_matrix, tmp_path / "matrix.html")
        assert path.exists()
        assert "scenario matrix" in path.read_text()


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "grid_rush" in out
        assert "multi_centre" in out

    def test_show_round_trips(self, capsys):
        assert main(["scenarios", "show", "radial_storm"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["name"] == "radial_storm"
        assert document["topology"]["family"] == "radial"

    def test_show_unknown_hints(self, capsys):
        assert main(["scenarios", "show", "radial_strom"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_run_writes_artifacts_and_signals_failure(
        self, capsys, tmp_path
    ):
        report = tmp_path / "matrix.html"
        verdicts = tmp_path / "matrix.json"
        # --no-parity leaves parity clauses unchecked -> exit 1.
        code = main(
            [
                "scenarios", "run", "grid_rush", "--no-parity",
                "--report", str(report), "--json", str(verdicts),
            ]
        )
        assert code == 1
        assert report.exists()
        payload = json.loads(verdicts.read_text())
        assert payload[0]["scenario"] == "grid_rush"
        assert any(
            clause["kind"] == "parity" and not clause["passed"]
            for clause in payload[0]["clauses"]
        )
        out = capsys.readouterr().out
        assert "matrix: 0/1 scenarios passed" in out

    def test_run_passing_scenario_exits_zero(self, capsys):
        code = main(["scenarios", "run", "radial_storm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "matrix: 1/1 scenarios passed" in out

    def test_matrix_flag_conflicts_with_names(self, capsys):
        assert main(["scenarios", "run", "grid_rush", "--matrix"]) == 2
        assert "whole library" in capsys.readouterr().err
