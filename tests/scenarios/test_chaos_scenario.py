"""Chaos leg of the scenario matrix: the storm scenario under the
blackout fault profile must degrade gracefully — the timeline names
the injected feed, the degraded-bounds envelope clause passes, and
sensor-side alerts are suppressed while bus-side recognition keeps
producing."""

import pytest

from repro.scenarios import get_scenario, run_scenario

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def blackout_run():
    return run_scenario(get_scenario("grid_blackout_chaos"))


class TestBlackoutScenario:
    def test_timeline_names_injected_feed(self, blackout_run):
        report = blackout_run.report
        assert "scats" in report.degraded
        timeline = "\n".join(report.degraded_timeline())
        assert "scats" in timeline

    def test_degraded_bounds_clause_passes(self, blackout_run):
        clauses = [
            clause
            for clause in blackout_run.envelope.clauses
            if clause.kind == "degraded"
        ]
        assert clauses and all(clause.passed for clause in clauses)
        assert clauses[0].subject == "scats"

    def test_sensor_alerts_suppressed(self, blackout_run):
        counts = blackout_run.report.console.counts()
        assert counts.get("scats congestion", 0) == 0

    def test_bus_feed_keeps_producing(self, blackout_run):
        report = blackout_run.report
        assert report.total_occurrences("disagree") > 0
        assert blackout_run.passed, "\n" + blackout_run.envelope.format()

    def test_fault_injection_counted(self, blackout_run):
        counters = blackout_run.report.metrics.get("counters", {})
        dropped = sum(
            count
            for name, count in counters.items()
            if name.startswith("faults.") and "drop" in name
        )
        assert dropped > 0
