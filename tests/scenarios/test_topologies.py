"""Topology-family generators: determinism, connectivity and the
properties the rest of the substrate relies on (regions populated,
edge lengths present, same bbox as Dublin)."""

import networkx as nx
import pytest

from repro.dublin.network import DUBLIN_BBOX, REGIONS
from repro.scenarios import (
    TopologySpec,
    build_network,
    generate_multi_centre_network,
    generate_radial_network,
)


@pytest.mark.parametrize(
    "make",
    [
        lambda seed: generate_radial_network(
            rings=4, spokes=8, seed=seed
        ),
        lambda seed: generate_multi_centre_network(
            centres=3, block=4, seed=seed
        ),
    ],
    ids=["radial", "multi_centre"],
)
class TestFamilies:
    def test_deterministic(self, make):
        a, b = make(7), make(7)
        assert sorted(a.graph.nodes) == sorted(b.graph.nodes)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_seed_changes_layout(self, make):
        a, b = make(1), make(2)
        pos_a = [a.position(n) for n in sorted(a.graph.nodes)[:10]]
        pos_b = [b.position(n) for n in sorted(b.graph.nodes)[:10]]
        assert pos_a != pos_b

    def test_connected(self, make):
        network = make(5)
        assert nx.is_connected(network.graph)

    def test_every_region_populated(self, make):
        network = make(5)
        seen = {
            network.region_of(*network.position(node))
            for node in network.graph.nodes
        }
        assert seen == set(REGIONS)

    def test_edges_carry_lengths(self, make):
        network = make(5)
        for _, _, attrs in network.graph.edges(data=True):
            assert attrs["length_m"] > 0

    def test_nodes_inside_bbox(self, make):
        network = make(5)
        lon_min, lat_min, lon_max, lat_max = DUBLIN_BBOX
        margin_lon = (lon_max - lon_min) * 0.25
        margin_lat = (lat_max - lat_min) * 0.25
        for node in network.graph.nodes:
            lon, lat = network.position(node)
            assert lon_min - margin_lon <= lon <= lon_max + margin_lon
            assert lat_min - margin_lat <= lat <= lat_max + margin_lat


class TestDispatch:
    def test_grid_dispatch(self):
        network = build_network(
            TopologySpec(family="grid", rows=4, cols=5), seed=1
        )
        assert network.graph.number_of_nodes() == 20

    def test_radial_dispatch(self):
        network = build_network(
            TopologySpec(family="radial", rings=3, spokes=6), seed=1
        )
        # Centre plus rings x spokes.
        assert network.graph.number_of_nodes() == 1 + 3 * 6

    def test_multi_centre_dispatch(self):
        network = build_network(
            TopologySpec(family="multi_centre", centres=2, block=3),
            seed=1,
        )
        assert network.graph.number_of_nodes() <= 2 * 9
        assert nx.is_connected(network.graph)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_radial_network(rings=1, spokes=8)
        with pytest.raises(ValueError):
            generate_multi_centre_network(centres=1, block=4)
