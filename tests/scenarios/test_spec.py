"""Scenario DSL validation and the serialise → parse → generate
round-trip pin.

The Hypothesis property at the bottom is the satellite contract: any
valid spec survives ``to_mapping`` → ``from_mapping`` unchanged, and
the re-parsed spec compiles to a byte-identical SDE stream — the DSL
document *is* the scenario, with no hidden state on the side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    SCENARIO_LIBRARY,
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    library_families,
    scenario_names,
)


class TestSpecValidation:
    def test_minimal_document(self):
        spec = ScenarioSpec.from_mapping({"name": "tiny"})
        assert spec.name == "tiny"
        assert spec.topology.family == "grid"
        assert spec.storm is None

    def test_unknown_top_level_key_hints(self):
        with pytest.raises(ValueError, match="did you mean 'topology'"):
            ScenarioSpec.from_mapping({"name": "x", "topologie": {}})

    def test_unknown_section_key_hints(self):
        with pytest.raises(ValueError, match="did you mean 'rows'"):
            ScenarioSpec.from_mapping(
                {"name": "x", "topology": {"row": 5}}
            )

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown topology family"):
            ScenarioSpec.from_mapping(
                {"name": "x", "topology": {"family": "hexagonal"}}
            )

    def test_reserved_system_keys_rejected(self):
        with pytest.raises(ValueError, match="runner owns"):
            ScenarioSpec.from_mapping(
                {"name": "x", "system": {"sharded": True}}
            )

    def test_bad_severity_band_rejected(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            ScenarioSpec.from_mapping(
                {"name": "x", "storm": {"severity": [90, 60]}}
            )

    def test_start_must_be_time_of_day(self):
        with pytest.raises(ValueError, match="time of day"):
            ScenarioSpec.from_mapping({"name": "x", "start": 90000})

    def test_duration_floor(self):
        with pytest.raises(ValueError, match="at least 600"):
            ScenarioSpec.from_mapping({"name": "x", "duration": 300})

    def test_envelope_unknown_key_hints(self):
        with pytest.raises(ValueError, match="unknown envelope key"):
            ScenarioSpec.from_mapping(
                {"name": "x", "envelope": {"alert": {}}}
            )

    def test_unknown_parity_variant_rejected(self):
        with pytest.raises(ValueError, match="parity variant"):
            ScenarioSpec.from_mapping(
                {"name": "x", "envelope": {"parity": ["sharded9"]}}
            )


class TestLibrary:
    def test_at_least_five_scenarios(self):
        assert len(SCENARIO_LIBRARY) >= 5

    def test_three_topology_families(self):
        assert len(library_families()) >= 3

    def test_names_unique(self):
        names = scenario_names()
        assert len(names) == len(set(names))

    def test_get_scenario_hints_on_typo(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_scenario("grid_rus")

    @pytest.mark.parametrize("name", [s.name for s in SCENARIO_LIBRARY])
    def test_round_trip_equality(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec


# ----------------------------------------------------------------------
# Hypothesis: serialise → parse → generate determinism.

# Lower size bounds keep the bus-line sampler viable: routes need at
# least 8 junctions, so the city must offer paths that long.
_topologies = st.one_of(
    st.fixed_dictionaries(
        {
            "family": st.just("grid"),
            "rows": st.integers(6, 8),
            "cols": st.integers(6, 8),
        }
    ),
    st.fixed_dictionaries(
        {
            "family": st.just("radial"),
            "rings": st.integers(4, 5),
            "spokes": st.integers(8, 10),
        }
    ),
    st.fixed_dictionaries(
        {
            "family": st.just("multi_centre"),
            "centres": st.integers(2, 3),
            "block": st.integers(4, 5),
        }
    ),
)

_storms = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "n_incidents": st.integers(1, 3),
            "severity": st.tuples(
                st.integers(50, 80), st.integers(90, 140)
            ).map(list),
        }
    ),
)

_specs = st.fixed_dictionaries(
    {
        "name": st.just("prop"),
        "seed": st.integers(0, 2**16),
        "start": st.integers(0, 23) .map(lambda h: h * 3600),
        "duration": st.just(600),
        "topology": _topologies,
        "fleet": st.fixed_dictionaries(
            {"n_buses": st.integers(1, 4), "n_lines": st.integers(1, 2)}
        ),
        "sensors": st.fixed_dictionaries(
            {"coverage": st.floats(0.05, 1.0, allow_nan=False)}
        ),
        "storm": _storms,
    }
)


class TestRoundTripProperty:
    @settings(max_examples=12, deadline=None)
    @given(document=_specs)
    def test_round_trip_generates_identical_stream(self, document):
        spec = ScenarioSpec.from_mapping(document)
        reparsed = ScenarioSpec.from_mapping(spec.to_mapping())
        assert reparsed == spec

        a = compile_scenario(spec)
        b = compile_scenario(reparsed)
        start, end = spec.start, spec.start + spec.duration
        data_a = a.generate(start, end)
        data_b = b.generate(start, end)
        assert [repr(e) for e in data_a.events] == [
            repr(e) for e in data_b.events
        ]
        assert [repr(f) for f in data_a.facts] == [
            repr(f) for f in data_b.facts
        ]
