"""Tests for the latency model, selection policies and query engine."""

import pytest

from repro.crowd import (
    AllParticipants,
    ChainedPolicy,
    CrowdQuery,
    DeadlinePolicy,
    DisagreementTask,
    LatencyModel,
    LocationPolicy,
    Participant,
    QueryExecutionEngine,
    ReliabilityPolicy,
    StepLatency,
    TRIGGER_RANGE_MS,
)

LON, LAT = -6.26, 53.35
M = 1 / 111_195


def _task(lon=LON, lat=LAT, true_label="congestion"):
    return DisagreementTask(1, lon=lon, lat=lat, true_label=true_label)


class TestLatencyModel:
    def test_trigger_in_range(self):
        model = LatencyModel(seed=1)
        for _ in range(100):
            t = model.trigger_ms()
            assert TRIGGER_RANGE_MS[0] <= t <= TRIGGER_RANGE_MS[1]

    @pytest.mark.parametrize(
        "connection,expected", [("2g", 467.0), ("3g", 169.0), ("wifi", 184.0)]
    )
    def test_push_calibration(self, connection, expected):
        model = LatencyModel(seed=2)
        mean = sum(model.push_ms(connection) for _ in range(300)) / 300
        assert mean == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize(
        "connection,expected", [("2g", 423.0), ("3g", 171.0), ("wifi", 182.0)]
    )
    def test_communication_calibration(self, connection, expected):
        model = LatencyModel(seed=3)
        mean = sum(model.communication_ms(connection) for _ in range(300)) / 300
        assert mean == pytest.approx(expected, rel=0.05)

    def test_unknown_connection(self):
        model = LatencyModel()
        with pytest.raises(ValueError, match="unknown connection"):
            model.push_ms("5g")

    def test_case_insensitive(self):
        model = LatencyModel()
        assert model.push_ms("WiFi") > 0

    def test_deterministic_given_seed(self):
        a = LatencyModel(seed=9)
        b = LatencyModel(seed=9)
        assert [a.push_ms("3g") for _ in range(5)] == [
            b.push_ms("3g") for _ in range(5)
        ]

    def test_expected_engine_latency_under_one_second(self):
        # The paper: even on 2G the engine-side end-to-end latency is
        # under a second.
        model = LatencyModel()
        for connection in ("2g", "3g", "wifi"):
            assert model.expected_engine_ms(connection) < 1000.0

    def test_custom_calibration(self):
        model = LatencyModel(push={"lan": StepLatency(5.0, 0.0)},
                             communication={"lan": StepLatency(5.0, 0.0)})
        assert model.push_ms("lan") == 5.0

    def test_think_time_positive(self):
        model = LatencyModel(seed=4)
        assert all(model.think_ms(20.0) >= 500.0 for _ in range(50))


class TestSelectionPolicies:
    def _participants(self):
        return [
            Participant("near", 0.1, lon=LON, lat=LAT + 100 * M),
            Participant("far", 0.05, lon=LON + 0.1, lat=LAT),
            Participant("sloppy", 0.6, lon=LON, lat=LAT),
        ]

    def test_all(self):
        ps = self._participants()
        assert AllParticipants().select(_task(), ps) == ps

    def test_location(self):
        ps = self._participants()
        chosen = LocationPolicy(radius_m=500).select(_task(), ps)
        assert {p.participant_id for p in chosen} == {"near", "sloppy"}

    def test_location_validates_radius(self):
        with pytest.raises(ValueError):
            LocationPolicy(radius_m=0)

    def test_reliability_top_k(self):
        ps = self._participants()
        policy = ReliabilityPolicy(
            {"near": 0.1, "far": 0.05, "sloppy": 0.6}, k=2
        )
        chosen = policy.select(_task(), ps)
        assert [p.participant_id for p in chosen] == ["far", "near"]

    def test_reliability_unknown_uses_default(self):
        ps = [Participant("a", 0.5), Participant("b", 0.5)]
        policy = ReliabilityPolicy({"a": 0.9}, k=1, default_error=0.25)
        assert policy.select(_task(), ps)[0].participant_id == "b"

    def test_reliability_validates_k(self):
        with pytest.raises(ValueError):
            ReliabilityPolicy({}, k=0)

    def test_deadline(self):
        ps = self._participants()
        estimates = {"near": 100.0, "far": 900.0, "sloppy": 5000.0}
        policy = DeadlinePolicy(
            1000.0, lambda p: estimates[p.participant_id]
        )
        chosen = policy.select(_task(), ps)
        assert {p.participant_id for p in chosen} == {"near", "far"}

    def test_deadline_validates(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(0, lambda p: 0.0)

    def test_chain_via_or(self):
        ps = self._participants()
        policy = LocationPolicy(radius_m=500) | ReliabilityPolicy(
            {"near": 0.1, "sloppy": 0.6}, k=1
        )
        chosen = policy.select(_task(), ps)
        assert [p.participant_id for p in chosen] == ["near"]

    def test_chain_short_circuits_on_empty(self):
        calls = []

        class Recorder(AllParticipants):
            def select(self, task, candidates):
                calls.append(len(candidates))
                return super().select(task, candidates)

        policy = ChainedPolicy([LocationPolicy(radius_m=1), Recorder()])
        assert policy.select(_task(lon=0, lat=0), self._participants()) == []
        assert calls == []

    def test_chain_requires_policies(self):
        with pytest.raises(ValueError):
            ChainedPolicy([])


class TestQueryExecutionEngine:
    def _engine(self, participants=None, **kwargs):
        engine = QueryExecutionEngine(seed=5, **kwargs)
        for p in participants or [
            Participant("p1", 0.05, lon=LON, lat=LAT, connection="wifi"),
            Participant("p2", 0.1, lon=LON, lat=LAT, connection="3g"),
            Participant("p3", 0.2, lon=LON, lat=LAT, connection="2g"),
        ]:
            engine.register(p)
        return engine

    def test_queries_all_online_participants(self):
        engine = self._engine()
        result = engine.execute(CrowdQuery(task=_task()))
        assert set(result.selected) == {"p1", "p2", "p3"}
        assert result.answered_count == 3
        assert len(result.answer_set) == 3

    def test_offline_devices_skipped(self):
        engine = self._engine()
        engine.set_online("p2", False)
        result = engine.execute(CrowdQuery(task=_task()))
        assert set(result.selected) == {"p1", "p3"}

    def test_set_online_unknown(self):
        engine = self._engine()
        with pytest.raises(KeyError):
            engine.set_online("ghost", True)

    def test_latency_breakdown_present(self):
        engine = self._engine()
        result = engine.execute(CrowdQuery(task=_task()))
        for execution in result.executions:
            assert execution.trigger_ms > 0
            assert execution.push_ms > 0
            assert execution.communication_ms > 0
            assert execution.engine_ms < 1500
            assert execution.total_ms > execution.engine_ms

    def test_reduce_phase_counts_votes(self):
        engine = self._engine(
            participants=[
                Participant(f"p{i}", 0.0, connection="wifi") for i in range(5)
            ]
        )
        result = engine.execute(CrowdQuery(task=_task()))
        assert result.vote_counts == {"congestion": 5}
        assert result.reduce_worker in result.selected

    def test_reply_window_drops_slow_workers(self):
        engine = self._engine()
        result = engine.execute(
            CrowdQuery(task=_task(), reply_window_ms=1.0)
        )
        assert result.answered_count == 0
        assert result.reduce_worker is None
        assert not result.answer_set

    def test_deadline_admission(self):
        # 2G expected engine latency (~936 ms) exceeds an 800 ms
        # deadline; 3G and WiFi fit.
        engine = self._engine()
        result = engine.execute(
            CrowdQuery(task=_task(), deadline_ms=800.0)
        )
        assert set(result.selected) == {"p1", "p2"}

    def test_historical_latency_updates_estimates(self):
        engine = self._engine()
        p1 = engine.online_participants()[0]
        before = engine.estimated_latency_ms(p1)
        engine.execute(CrowdQuery(task=_task()))
        after = engine.estimated_latency_ms(p1)
        # After one execution the estimate is the observed mean, which
        # almost surely differs from the model expectation.
        assert before != after

    def test_mean_step_latency(self):
        engine = self._engine()
        result = engine.execute(CrowdQuery(task=_task()))
        means = result.mean_step_ms()
        assert set(means) == {"trigger", "push", "communication"}
        assert all(v > 0 for v in means.values())

    def test_mean_step_latency_empty(self):
        engine = QueryExecutionEngine(seed=0)
        result = engine.execute(CrowdQuery(task=_task()))
        assert result.mean_step_ms() == {
            "trigger": 0.0,
            "push": 0.0,
            "communication": 0.0,
        }

    def test_policy_applied(self):
        engine = self._engine(policy=LocationPolicy(radius_m=500))
        engine.register(Participant("far", 0.1, lon=LON + 1.0, lat=LAT))
        result = engine.execute(CrowdQuery(task=_task()))
        assert "far" not in result.selected

    def test_deterministic_given_seed(self):
        r1 = self._engine().execute(CrowdQuery(task=_task()))
        r2 = self._engine().execute(CrowdQuery(task=_task()))
        assert r1.answer_set.answers == r2.answer_set.answers
        assert [e.push_ms for e in r1.executions] == [
            e.push_ms for e in r2.executions
        ]


class TestDeviceTracking:
    """The engine tracks moving devices and connection hand-overs."""

    def _engine(self):
        engine = QueryExecutionEngine(seed=8,
                                      policy=LocationPolicy(radius_m=500))
        engine.register(
            Participant("roamer", 0.1, lon=LON, lat=LAT, connection="wifi")
        )
        return engine

    def test_update_location_affects_selection(self):
        engine = self._engine()
        assert engine.execute(CrowdQuery(task=_task())).selected == ["roamer"]
        engine.update_location("roamer", LON + 1.0, LAT)
        assert engine.execute(CrowdQuery(task=_task())).selected == []
        engine.update_location("roamer", LON, LAT)
        assert engine.execute(CrowdQuery(task=_task())).selected == ["roamer"]

    def test_update_connection_affects_latency(self):
        engine = self._engine()
        wifi = engine.estimated_latency_ms(engine.online_participants()[0])
        engine.update_connection("roamer", "2g")
        slow = engine.estimated_latency_ms(engine.online_participants()[0])
        assert slow > wifi

    def test_update_connection_validates(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="unknown connection"):
            engine.update_connection("roamer", "5g")

    def test_unknown_participant_rejected(self):
        engine = self._engine()
        with pytest.raises(KeyError):
            engine.update_location("ghost", 0.0, 0.0)
        with pytest.raises(KeyError):
            engine.update_connection("ghost", "3g")
