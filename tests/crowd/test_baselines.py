"""Tests for the answer-aggregation baselines."""

import random

import pytest

from repro.crowd import (
    TRAFFIC_LABELS,
    AnswerSet,
    DisagreementTask,
    MajorityVote,
    OnlineEM,
    Participant,
    SequentialBayes,
    simulate_answers,
)

TRUE_PS = {
    f"P{i + 1}": p
    for i, p in enumerate(
        [0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9]
    )
}


def _workload(n_events, seed=0):
    rng = random.Random(seed)
    participants = [Participant(pid, p) for pid, p in TRUE_PS.items()]
    out = []
    for t in range(1, n_events + 1):
        truth = rng.choice(TRAFFIC_LABELS)
        task = DisagreementTask(t, true_label=truth)
        out.append((truth, simulate_answers(task, participants, rng)))
    return out


def _accuracy(aggregator, workload):
    correct = 0
    for truth, answers in workload:
        estimate = aggregator.process(answers)
        if estimate.decided_label == truth:
            correct += 1
    return correct / len(workload)


class TestMajorityVote:
    def test_plurality_wins(self):
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        answers.add("a", "congestion")
        answers.add("b", "congestion")
        answers.add("c", "accident")
        estimate = MajorityVote().process(answers)
        assert estimate.decided_label == "congestion"
        assert estimate.value == "positive"
        assert estimate.posterior["congestion"] == pytest.approx(2 / 3)

    def test_empty_answers_fall_back_to_prior(self):
        prior = {
            "congestion": 0.7, "free_flow": 0.1,
            "accident": 0.1, "roadworks": 0.1,
        }
        estimate = MajorityVote().process(
            AnswerSet(DisagreementTask(1, prior=prior))
        )
        assert estimate.decided_label == "congestion"

    def test_counts_peaked_events(self):
        mv = MajorityVote()
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        answers.add("a", "congestion")
        mv.process(answers)  # single unanimous answer: fully peaked
        assert mv.total_events == 1
        assert mv.peaked_events == 1


class TestSequentialBayes:
    def test_prior_validation(self):
        with pytest.raises(ValueError):
            SequentialBayes(prior_alpha=0.0)

    def test_reliability_starts_at_prior_mean(self):
        sb = SequentialBayes(prior_alpha=3.0, prior_beta=1.0)
        assert sb.reliability("anyone") == pytest.approx(0.75)
        assert sb.estimate("anyone") == pytest.approx(0.25)

    def test_counters_update_with_consensus(self):
        sb = SequentialBayes()
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        for pid in ("a", "b", "c"):
            answers.add(pid, "congestion")
        answers.add("d", "accident")
        sb.process(answers)
        assert sb.reliability("a") > sb.reliability("d")

    def test_learns_unreliable_participants(self):
        sb = SequentialBayes()
        for truth, answers in _workload(300, seed=3):
            sb.process(answers)
        assert sb.estimate("P1") < 0.2
        assert sb.estimate("P10") > 0.6


class TestAccuracyOrdering:
    def test_reliability_aware_beats_majority(self):
        # The whole point of Section 5.2: with adversarial and noisy
        # participants present, reliability-aware fusion out-labels
        # blind majority voting.
        workload = _workload(400, seed=11)
        acc_em = _accuracy(OnlineEM(), workload)
        acc_sb = _accuracy(SequentialBayes(), workload)
        acc_mv = _accuracy(MajorityVote(), workload)
        assert acc_em > acc_mv
        assert acc_sb > acc_mv
        assert acc_em > 0.9
