"""Tests for the integrated crowdsourcing component facade."""

import pytest

from repro.crowd import (
    CrowdsourcingComponent,
    OnlineEM,
    Participant,
    QueryExecutionEngine,
)

LON, LAT = -6.26, 53.35


def _component(participants=None, **kwargs):
    engine = QueryExecutionEngine(seed=3, **kwargs)
    if participants is None:
        participants = [
            Participant(f"p{i}", 0.05, lon=LON, lat=LAT, connection="wifi")
            for i in range(5)
        ]
    for p in participants:
        engine.register(p)
    return CrowdsourcingComponent(engine)


class TestCrowdsourcingComponent:
    def test_produces_crowd_event(self):
        component = _component()
        outcome = component.handle_disagreement(
            intersection="I1",
            lon=LON,
            lat=LAT,
            time=1000,
            true_label="congestion",
        )
        assert outcome.crowd_event is not None
        ev = outcome.crowd_event
        assert ev.type == "crowd"
        assert ev["intersection"] == "I1"
        assert ev["value"] == "positive"
        assert ev["confidence"] > 0.9
        assert ev.time > 1000

    def test_negative_value_when_no_congestion(self):
        component = _component()
        outcome = component.handle_disagreement(
            intersection="I1",
            lon=LON,
            lat=LAT,
            time=1000,
            true_label="free_flow",
        )
        assert outcome.crowd_event["value"] == "negative"

    def test_no_event_without_answers(self):
        component = _component(participants=[])
        outcome = component.handle_disagreement(
            intersection="I1",
            lon=LON,
            lat=LAT,
            time=1000,
            true_label="congestion",
        )
        assert outcome.crowd_event is None
        assert outcome.estimate is None

    def test_prior_forwarded_to_task(self):
        component = _component()
        prior = {
            "congestion": 0.7,
            "free_flow": 0.1,
            "accident": 0.1,
            "roadworks": 0.1,
        }
        outcome = component.handle_disagreement(
            intersection="I1",
            lon=LON,
            lat=LAT,
            time=0,
            prior=prior,
            true_label="congestion",
        )
        assert outcome.task.prior == prior

    def test_task_ids_increment(self):
        component = _component()
        o1 = component.handle_disagreement(
            intersection="I1", lon=LON, lat=LAT, time=0,
            true_label="congestion",
        )
        o2 = component.handle_disagreement(
            intersection="I1", lon=LON, lat=LAT, time=10,
            true_label="congestion",
        )
        assert o2.task.task_id == o1.task.task_id + 1
        assert len(component.outcomes) == 2

    def test_reliability_learning_persists_across_events(self):
        # Two lone participants who always disagree are statistically
        # indistinguishable (EM identifiability); use a small majority
        # of reliable participants, as in the paper's 10-person panel.
        component = _component(
            participants=[
                Participant("good", 0.05, lon=LON, lat=LAT),
                Participant("good2", 0.1, lon=LON, lat=LAT),
                Participant("good3", 0.1, lon=LON, lat=LAT),
                Participant("bad", 0.9, lon=LON, lat=LAT),
            ]
        )
        for t in range(60):
            component.handle_disagreement(
                intersection="I1",
                lon=LON,
                lat=LAT,
                time=t * 100,
                true_label="congestion",
            )
        em = component.aggregator
        assert em.estimate("good") < 0.25
        assert em.estimate("bad") > 0.5

    def test_shared_aggregator_injection(self):
        em = OnlineEM(initial_error=0.3)
        engine = QueryExecutionEngine(seed=1)
        engine.register(Participant("p", 0.1, lon=LON, lat=LAT))
        component = CrowdsourcingComponent(engine, aggregator=em)
        component.handle_disagreement(
            intersection="I1", lon=LON, lat=LAT, time=0,
            true_label="congestion",
        )
        assert em.total_events == 1
