"""Tests for batch EM and the online EM (Algorithm 1)."""

import random

import pytest

from repro.crowd import (
    TRAFFIC_LABELS,
    AnswerSet,
    BatchEM,
    DisagreementTask,
    OnlineEM,
    Participant,
    answer_likelihood,
    harmonic_gamma,
    paper_printed_gamma,
    posterior_over_labels,
    simulate_answers,
)

TRUE_PS = {
    f"P{i+1}": p
    for i, p in enumerate(
        [0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9]
    )
}


def _simulate(n_events, seed=0, participants=None):
    rng = random.Random(seed)
    participants = participants or [
        Participant(pid, p) for pid, p in TRUE_PS.items()
    ]
    answer_sets = []
    for t in range(1, n_events + 1):
        task = DisagreementTask(t, true_label=rng.choice(TRAFFIC_LABELS))
        answer_sets.append(simulate_answers(task, participants, rng))
    return answer_sets


class TestLikelihood:
    def test_truthful_probability(self):
        assert answer_likelihood("a", "a", 0.2, 4) == pytest.approx(0.8)

    def test_wrong_probability_split_uniformly(self):
        assert answer_likelihood("b", "a", 0.3, 4) == pytest.approx(0.1)

    def test_posterior_prefers_consensus(self):
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        for i in range(4):
            answers.add(f"p{i}", "congestion")
        posterior = posterior_over_labels(answers, {}, default_error=0.2)
        assert posterior["congestion"] > 0.99

    def test_posterior_weighs_reliability(self):
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        answers.add("good", "congestion")
        answers.add("bad", "free_flow")
        posterior = posterior_over_labels(
            answers, {"good": 0.05, "bad": 0.45}
        )
        assert posterior["congestion"] > posterior["free_flow"]

    def test_posterior_respects_prior(self):
        task = DisagreementTask(
            1,
            prior={
                "congestion": 0.97,
                "free_flow": 0.01,
                "accident": 0.01,
                "roadworks": 0.01,
            },
        )
        answers = AnswerSet(task)
        answers.add("p", "free_flow")
        posterior = posterior_over_labels(answers, {"p": 0.4})
        # A single noisy dissent cannot overturn a strong prior.
        assert posterior["congestion"] > posterior["free_flow"]

    def test_posterior_is_distribution(self):
        answer_sets = _simulate(5)
        for answers in answer_sets:
            posterior = posterior_over_labels(answers, {})
            assert sum(posterior.values()) == pytest.approx(1.0)
            assert all(v >= 0 for v in posterior.values())


class TestBatchEM:
    def test_requires_data(self):
        with pytest.raises(ValueError):
            BatchEM().fit([])

    def test_recovers_error_rates(self):
        result = BatchEM().fit(_simulate(400, seed=3))
        for pid, true_p in TRUE_PS.items():
            assert result.error_probabilities[pid] == pytest.approx(
                true_p, abs=0.08
            ), pid

    def test_converges(self):
        result = BatchEM().fit(_simulate(100, seed=1))
        assert result.converged
        assert result.iterations < 200

    def test_posteriors_match_events(self):
        sets = _simulate(50, seed=2)
        result = BatchEM().fit(sets)
        assert len(result.posteriors) == 50

    def test_log_likelihood_improves_over_initial(self):
        sets = _simulate(80, seed=4)
        em = BatchEM()
        initial = {pid: 0.25 for pid in TRUE_PS}
        ll_initial = em._log_likelihood(sets, initial)
        result = em.fit(sets)
        assert result.log_likelihood >= ll_initial

    def test_estimates_clamped(self):
        # A participant who always answers with the consensus could be
        # driven to exactly 0; the clamp keeps likelihoods finite.
        sets = _simulate(50, seed=5)
        result = BatchEM().fit(sets)
        for p in result.error_probabilities.values():
            assert 0.0 < p < 1.0


class TestOnlineEM:
    def test_recovers_error_rates(self):
        em = OnlineEM()
        for answers in _simulate(1000, seed=42):
            em.process(answers)
        for pid, true_p in TRUE_PS.items():
            assert em.estimate(pid) == pytest.approx(true_p, abs=0.08), pid

    def test_ranking_roughly_correct_after_100_calls(self):
        # The paper: "After processing approximately 100 calls, the
        # ordering of the participant by quality is more or less
        # correct, except for participants whose error probabilities
        # are close."
        em = OnlineEM()
        for answers in _simulate(100, seed=42):
            em.process(answers)
        ranking = em.reliability_ranking()
        # Check coarse ordering: best three before worst three.
        best = {"P1", "P2", "P3"}
        worst = {"P8", "P9", "P10"}
        assert max(ranking.index(p) for p in best) < min(
            ranking.index(p) for p in worst
        )

    def test_peaked_fraction_matches_paper(self):
        # Section 7.2: ~94% of posteriors have max prob > 0.99.
        em = OnlineEM()
        for answers in _simulate(1000, seed=42):
            em.process(answers)
        assert 0.85 <= em.peaked_fraction <= 0.99

    def test_unknown_participant_uses_initial_estimate(self):
        em = OnlineEM(initial_error=0.25)
        assert em.estimate("nobody") == 0.25

    def test_value_positive_on_congestion(self):
        em = OnlineEM()
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        for i in range(4):
            answers.add(f"p{i}", "congestion")
        estimate = em.process(answers)
        assert estimate.value == "positive"
        assert estimate.decided_label == "congestion"

    def test_value_negative_otherwise(self):
        em = OnlineEM()
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        for i in range(4):
            answers.add(f"p{i}", "roadworks")
        estimate = em.process(answers)
        assert estimate.value == "negative"

    def test_relative_errors(self):
        em = OnlineEM()
        for answers in _simulate(300, seed=7):
            em.process(answers)
        errors = em.relative_errors(TRUE_PS)
        assert set(errors) == set(TRUE_PS)
        assert all(abs(e) < 0.8 for e in errors.values())

    def test_relative_errors_skips_zero_truth(self):
        em = OnlineEM()
        assert em.relative_errors({"p": 0.0}) == {}

    def test_per_participant_step_counts(self):
        # Participants answering different numbers of events get
        # different t_i counters.
        em = OnlineEM()
        task = DisagreementTask(1)
        a1 = AnswerSet(task)
        a1.add("often", "congestion")
        a1.add("rare", "congestion")
        em.process(a1)
        task2 = DisagreementTask(2)
        a2 = AnswerSet(task2)
        a2.add("often", "congestion")
        em.process(a2)
        assert em.query_counts["often"] == 3
        assert em.query_counts["rare"] == 2

    def test_event_independence_state_is_small(self):
        # Online EM forgets events: state is only (p_i, t_i) pairs.
        em = OnlineEM()
        for answers in _simulate(50, seed=9):
            em.process(answers)
        assert set(em.error_probabilities) == set(TRUE_PS)
        assert set(em.query_counts) == set(TRUE_PS)


class TestGammaSchedules:
    def test_harmonic_satisfies_robbins_monro_shape(self):
        # Decreasing, sums diverge slowly, squares converge.
        values = [harmonic_gamma(t) for t in range(1, 100)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert sum(v * v for v in values) < 2.0

    def test_paper_printed_gamma_tends_to_one(self):
        assert paper_printed_gamma(1000) > 0.999

    def test_printed_gamma_does_not_converge(self):
        # Ablation: the literally-printed schedule keeps chasing the
        # last posterior, so its estimates fluctuate far more.
        def final_estimates(gamma):
            em = OnlineEM(gamma=gamma)
            for answers in _simulate(600, seed=11):
                em.process(answers)
            return em

        stable = final_estimates(harmonic_gamma)
        unstable = final_estimates(paper_printed_gamma)
        err_stable = sum(
            abs(stable.estimate(pid) - p) for pid, p in TRUE_PS.items()
        )
        err_unstable = sum(
            abs(unstable.estimate(pid) - p) for pid, p in TRUE_PS.items()
        )
        assert err_stable < err_unstable


class TestPosteriorProperties:
    """Probabilistic invariants of the answer-fusion model."""

    def test_uninformative_participant_changes_nothing(self):
        # With 4 labels, a participant with p = 3/4 assigns likelihood
        # 1/4 to every label — adding their answer must not move the
        # posterior (eq. 7 makes them pure noise).
        task = DisagreementTask(1)
        base = AnswerSet(task)
        base.add("good", "congestion")
        with_noise = AnswerSet(task)
        with_noise.add("good", "congestion")
        with_noise.add("noise", "accident")
        theta = {"good": 0.1, "noise": 0.75}
        a = posterior_over_labels(base, theta)
        b = posterior_over_labels(with_noise, theta)
        for label in task.labels:
            assert a[label] == pytest.approx(b[label])

    def test_posterior_invariant_to_answer_order(self):
        task = DisagreementTask(1)
        forward = AnswerSet(task)
        backward = AnswerSet(task)
        answers = [("a", "congestion"), ("b", "accident"), ("c", "congestion")]
        for pid, label in answers:
            forward.add(pid, label)
        for pid, label in reversed(answers):
            backward.add(pid, label)
        theta = {"a": 0.1, "b": 0.3, "c": 0.2}
        assert posterior_over_labels(forward, theta) == pytest.approx(
            posterior_over_labels(backward, theta)
        )

    def test_adversarial_answer_is_negative_evidence(self):
        # An answer from a participant with p > (n-1)/n is evidence
        # AGAINST the answered label.
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        answers.add("liar", "congestion")
        posterior = posterior_over_labels(answers, {"liar": 0.95})
        assert posterior["congestion"] < 0.25  # below the uniform prior

    def test_more_confirmations_more_confidence(self):
        task = DisagreementTask(1)
        theta = {f"p{i}": 0.2 for i in range(5)}
        previous = 0.0
        for n in range(1, 6):
            answers = AnswerSet(task)
            for i in range(n):
                answers.add(f"p{i}", "congestion")
            posterior = posterior_over_labels(answers, theta)
            assert posterior["congestion"] > previous
            previous = posterior["congestion"]
