"""Tests for the crowd participant/answer model (eqs. 6-7)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import (
    TRAFFIC_LABELS,
    AnswerSet,
    DisagreementTask,
    Participant,
    simulate_answers,
    uniform_prior,
    validate_distribution,
)


class TestPriors:
    def test_uniform_prior(self):
        prior = uniform_prior(("a", "b", "c", "d"))
        assert prior == {k: 0.25 for k in "abcd"}

    def test_uniform_prior_empty(self):
        with pytest.raises(ValueError):
            uniform_prior(())

    def test_validate_accepts_distribution(self):
        d = {"a": 0.7, "b": 0.3}
        assert validate_distribution(d, ("a", "b")) == d

    def test_validate_rejects_wrong_labels(self):
        with pytest.raises(ValueError, match="labels"):
            validate_distribution({"a": 1.0}, ("a", "b"))

    def test_validate_rejects_non_distribution(self):
        with pytest.raises(ValueError, match="probability"):
            validate_distribution({"a": 0.7, "b": 0.7}, ("a", "b"))
        with pytest.raises(ValueError, match="probability"):
            validate_distribution({"a": -0.5, "b": 1.5}, ("a", "b"))


class TestDisagreementTask:
    def test_defaults(self):
        task = DisagreementTask(1)
        assert task.labels == TRAFFIC_LABELS
        assert task.prior == uniform_prior(TRAFFIC_LABELS)

    def test_custom_prior_validated(self):
        with pytest.raises(ValueError):
            DisagreementTask(1, labels=("a", "b"), prior={"a": 2.0, "b": -1.0})

    def test_needs_two_labels(self):
        with pytest.raises(ValueError, match="two"):
            DisagreementTask(1, labels=("only",))

    def test_true_label_must_be_known(self):
        with pytest.raises(ValueError, match="true label"):
            DisagreementTask(1, true_label="nonsense")


class TestParticipant:
    def test_error_probability_bounds(self):
        with pytest.raises(ValueError):
            Participant("p", -0.1)
        with pytest.raises(ValueError):
            Participant("p", 1.1)

    def test_perfect_participant_always_truthful(self):
        p = Participant("p", 0.0)
        task = DisagreementTask(1, true_label="congestion")
        rng = random.Random(0)
        assert all(p.answer(task, rng) == "congestion" for _ in range(50))

    def test_adversarial_participant_never_truthful(self):
        p = Participant("p", 1.0)
        task = DisagreementTask(1, true_label="congestion")
        rng = random.Random(0)
        assert all(p.answer(task, rng) != "congestion" for _ in range(50))

    def test_answer_requires_ground_truth(self):
        p = Participant("p", 0.1)
        with pytest.raises(ValueError, match="ground truth"):
            p.answer(DisagreementTask(1), random.Random(0))

    def test_error_rate_statistics(self):
        # Empirical error frequency approaches p_i (eq. 6).
        p = Participant("p", 0.4)
        task = DisagreementTask(1, true_label="congestion")
        rng = random.Random(7)
        wrong = sum(
            p.answer(task, rng) != "congestion" for _ in range(4000)
        )
        assert wrong / 4000 == pytest.approx(0.4, abs=0.03)

    def test_wrong_answers_uniform_over_alternatives(self):
        # Eq. (7): wrong answers spread uniformly over the other labels.
        p = Participant("p", 1.0)
        task = DisagreementTask(1, true_label="congestion")
        rng = random.Random(7)
        counts = Counter(p.answer(task, rng) for _ in range(6000))
        for label in TRAFFIC_LABELS[1:]:
            assert counts[label] / 6000 == pytest.approx(1 / 3, abs=0.04)


class TestAnswerSet:
    def test_add_and_len(self):
        task = DisagreementTask(1)
        answers = AnswerSet(task)
        assert not answers
        answers.add("p1", "congestion")
        assert len(answers) == 1
        assert answers.answers["p1"] == "congestion"

    def test_rejects_unknown_label(self):
        answers = AnswerSet(DisagreementTask(1))
        with pytest.raises(ValueError, match="labels"):
            answers.add("p1", "weather")

    def test_simulate_answers_covers_everyone(self):
        task = DisagreementTask(1, true_label="congestion")
        participants = [Participant(f"p{i}", 0.2) for i in range(5)]
        answers = simulate_answers(task, participants, random.Random(0))
        assert set(answers.answers) == {f"p{i}" for i in range(5)}


@given(st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
@settings(max_examples=25)
def test_answers_always_valid_labels(error_probability, seed):
    p = Participant("p", error_probability)
    task = DisagreementTask(1, true_label="free_flow")
    rng = random.Random(seed)
    for _ in range(20):
        assert p.answer(task, rng) in TRAFFIC_LABELS
