"""Tests for the crowd extensions: priors, rewards, sensor probes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crowd import (
    CONGESTION_LABEL,
    TRAFFIC_LABELS,
    OnlineEM,
    Participant,
    ProbeResult,
    QueryExecutionEngine,
    RewardLedger,
    RewardPolicy,
    SensorProbe,
    bus_report_prior,
    execute_probe,
    uniform_prior,
)

LON, LAT = -6.26, 53.35


class TestBusReportPrior:
    def test_no_reports_uniform(self):
        assert bus_report_prior(0, 0) == uniform_prior(TRAFFIC_LABELS)

    def test_zero_strength_uniform(self):
        assert bus_report_prior(3, 4, strength=0.0) == uniform_prior(
            TRAFFIC_LABELS
        )

    def test_paper_example_ordering(self):
        # "if only 1 out of 4 buses ... indicates a congestion, the
        # prior could assign a lower prior probability to the
        # congestion than if 3 out of 4 buses reported a congestion."
        low = bus_report_prior(1, 4)
        high = bus_report_prior(3, 4)
        assert low[CONGESTION_LABEL] < high[CONGESTION_LABEL]

    def test_unanimous_congestion_beats_uniform(self):
        prior = bus_report_prior(4, 4)
        assert prior[CONGESTION_LABEL] > 1.0 / len(TRAFFIC_LABELS)

    def test_smoothing_avoids_degenerate_prior(self):
        prior = bus_report_prior(1, 1, strength=1.0)
        assert 0.0 < prior[CONGESTION_LABEL] < 1.0
        assert all(v > 0 for v in prior.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            bus_report_prior(5, 4)
        with pytest.raises(ValueError, match="non-negative"):
            bus_report_prior(-1, 4)
        with pytest.raises(ValueError, match="strength"):
            bus_report_prior(1, 4, strength=2.0)
        with pytest.raises(ValueError, match="pseudo"):
            bus_report_prior(1, 4, pseudo_count=0.0)
        with pytest.raises(ValueError, match="congestion label"):
            bus_report_prior(1, 4, labels=("a", "b"))

    @given(st.integers(0, 20), st.integers(0, 20),
           st.floats(0.0, 1.0))
    def test_always_a_distribution(self, positive, extra, strength):
        total = positive + extra
        prior = bus_report_prior(positive, total, strength=strength)
        assert sum(prior.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in prior.values())
        assert set(prior) == set(TRAFFIC_LABELS)


class TestRewards:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RewardPolicy(base_per_answer=-1)
        with pytest.raises(ValueError):
            RewardPolicy(quality_bonus=-1)
        with pytest.raises(ValueError):
            RewardPolicy(quality_cutoff=0.0)

    def test_quality_score(self):
        policy = RewardPolicy(quality_cutoff=0.75)
        assert policy.quality(0.0) == 1.0
        assert policy.quality(0.75) == 0.0
        assert policy.quality(0.9) == 0.0  # clamped
        assert 0.0 < policy.quality(0.3) < 1.0

    def test_better_participants_earn_more(self):
        policy = RewardPolicy()
        good = policy.reward(10, 0.05)
        bad = policy.reward(10, 0.7)
        assert good > bad

    def test_reward_proportional_to_answers(self):
        policy = RewardPolicy()
        assert policy.reward(20, 0.1) == pytest.approx(
            2 * policy.reward(10, 0.1)
        )

    def test_negative_answers_rejected(self):
        with pytest.raises(ValueError):
            RewardPolicy().reward(-1, 0.1)

    def test_ledger_settlement(self):
        ledger = RewardLedger()
        ledger.record_answers(["a", "b"])
        ledger.record_answers(["a"])
        em = OnlineEM()
        em.error_probabilities = {"a": 0.05, "b": 0.6}
        rewards = ledger.settle(em)
        assert set(rewards) == {"a", "b"}
        assert rewards["a"] > rewards["b"]

    def test_ledger_settle_from_mapping(self):
        ledger = RewardLedger()
        ledger.record_answers(["a"])
        rewards = ledger.settle_from({"a": 0.1})
        assert rewards["a"] > 0


class TestSensorProbes:
    def _engine(self, positions):
        engine = QueryExecutionEngine(seed=4)
        for pid, (lon, lat, connection) in positions.items():
            engine.register(
                Participant(pid, 0.1, lon=lon, lat=lat,
                            connection=connection)
            )
        return engine

    def test_probe_validation(self):
        with pytest.raises(ValueError, match="reducer"):
            SensorProbe("speed", lambda p: 0.0, reducer="max")
        with pytest.raises(ValueError, match="radius"):
            SensorProbe("speed", lambda p: 0.0, density_radius_m=0)

    def test_mean_reducer(self):
        engine = self._engine({
            "a": (LON, LAT, "wifi"),
            "b": (LON, LAT, "3g"),
        })
        values = {"a": 30.0, "b": 50.0}
        probe = SensorProbe(
            "speed_kmh", lambda p: values[p.participant_id]
        )
        result = execute_probe(engine, probe)
        assert result.n_readings == 2
        assert result.aggregate == pytest.approx(40.0)

    def test_median_reducer(self):
        engine = self._engine({
            "a": (LON, LAT, "wifi"),
            "b": (LON, LAT, "wifi"),
            "c": (LON, LAT, "wifi"),
        })
        values = {"a": 10.0, "b": 20.0, "c": 90.0}
        probe = SensorProbe(
            "humidity", lambda p: values[p.participant_id],
            reducer="median",
        )
        assert execute_probe(engine, probe).aggregate == 20.0

    def test_density_weighted_reducer(self):
        # Three phones in one spot reading 0, one isolated phone
        # reading 100: density weighting pulls the aggregate towards
        # the isolated reading (unweighted mean would be 25).
        engine = self._engine({
            "a": (LON, LAT, "wifi"),
            "b": (LON, LAT, "wifi"),
            "c": (LON, LAT, "wifi"),
            "far": (LON + 0.05, LAT, "wifi"),
        })
        values = {"a": 0.0, "b": 0.0, "c": 0.0, "far": 100.0}
        probe = SensorProbe(
            "speed", lambda p: values[p.participant_id],
            reducer="density_weighted",
        )
        result = execute_probe(engine, probe)
        assert result.aggregate == pytest.approx(50.0)

    def test_reply_window_filters_slow_devices(self):
        engine = self._engine({
            "slow": (LON, LAT, "2g"),
            "fast": (LON, LAT, "wifi"),
        })
        probe = SensorProbe(
            "speed", lambda p: 1.0, reply_window_ms=700.0
        )
        result = execute_probe(engine, probe)
        ids = {r.participant_id for r in result.readings}
        assert ids == {"fast"}

    def test_empty_engine(self):
        engine = QueryExecutionEngine(seed=1)
        result = execute_probe(engine, SensorProbe("x", lambda p: 1.0))
        assert result.n_readings == 0
        assert result.aggregate is None
