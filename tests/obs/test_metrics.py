"""Tests for the metrics instruments and the registry export."""

import json

import pytest

from repro.obs import Counter, Gauge, Registry, Timing


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_overwrites(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_timing_summary(self):
        t = Timing()
        for s in (0.1, 0.3, 0.2):
            t.observe(s)
        assert t.count == 3
        assert t.total == pytest.approx(0.6)
        assert t.min == pytest.approx(0.1)
        assert t.max == pytest.approx(0.3)
        assert t.mean == pytest.approx(0.2)

    def test_timing_empty_mean(self):
        assert Timing().mean == 0.0

    def test_timing_context_manager(self):
        t = Timing()
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        r = Registry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.timing("c") is r.timing("c")
        assert r.names() == ["a", "b", "c"]
        assert len(r) == 3

    def test_json_round_trip(self):
        r = Registry()
        r.counter("streams.items.ingested").inc(42)
        r.gauge("flow.coverage").set(0.75)
        t = r.timing("process.cep-north.seconds")
        t.observe(0.25)
        t.observe(0.05)

        restored = Registry.from_json(r.to_json())
        assert restored.to_dict() == r.to_dict()
        # The export is valid, plain JSON all the way down.
        parsed = json.loads(r.to_json(indent=2))
        assert parsed["counters"]["streams.items.ingested"] == 42
        assert parsed["timings"]["process.cep-north.seconds"]["count"] == 2

    def test_round_trip_preserves_untouched_instruments(self):
        r = Registry()
        r.counter("never.incremented")
        r.timing("never.observed")
        restored = Registry.from_json(r.to_json())
        assert restored.counter("never.incremented").value == 0
        assert restored.timing("never.observed").count == 0
        assert restored.to_dict() == r.to_dict()

    def test_merge(self):
        a = Registry()
        a.counter("n").inc(2)
        a.timing("t").observe(0.1)
        a.gauge("g").set(1.0)
        b = Registry()
        b.counter("n").inc(3)
        b.timing("t").observe(0.4)
        b.gauge("g").set(2.0)

        a.merge(b)
        assert a.counter("n").value == 5
        assert a.timing("t").count == 2
        assert a.timing("t").total == pytest.approx(0.5)
        assert a.timing("t").min == pytest.approx(0.1)
        assert a.timing("t").max == pytest.approx(0.4)
        assert a.gauge("g").value == 2.0


class TestAtomicExport:
    def test_write_json_round_trips(self, tmp_path):
        registry = Registry()
        registry.counter("a").inc(3)
        registry.gauge("g").set(1.5)
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        revived = Registry.from_json(path.read_text())
        assert revived.counters() == {"a": 3}
        assert revived.gauges() == {"g": 1.5}

    def test_write_json_leaves_no_tmp_files(self, tmp_path):
        registry = Registry()
        registry.counter("a").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        registry.write_json(path)  # overwrite is atomic too
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.json"]
