"""Ablation A6: answer-aggregation strategies.

Section 5.2 argues for reliability-aware aggregation over simple
averaging and surveys EM, Bayesian scoring and sequential Bayesian
estimation.  This ablation pits the paper's online EM against blind
majority voting and a sequential-Bayes baseline on the Figure 5
workload, measuring labelling accuracy overall and — where the choice
matters most — on the events where the crowd was split.
"""

from __future__ import annotations

import random

import pytest

from repro.crowd import (
    TRAFFIC_LABELS,
    DisagreementTask,
    MajorityVote,
    OnlineEM,
    Participant,
    SequentialBayes,
    simulate_answers,
)

from conftest import emit

TRUE_PS = [0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9]
N_EVENTS = 800


def _workload(seed=19):
    rng = random.Random(seed)
    participants = [
        Participant(f"P{i + 1}", p) for i, p in enumerate(TRUE_PS)
    ]
    out = []
    for t in range(1, N_EVENTS + 1):
        truth = rng.choice(TRAFFIC_LABELS)
        task = DisagreementTask(t, true_label=truth)
        out.append((truth, simulate_answers(task, participants, rng)))
    return out


def _evaluate(factory, workload):
    aggregator = factory()
    correct = contested = contested_correct = 0
    for truth, answers in workload:
        votes = list(answers.answers.values())
        top = max(votes.count(lb) for lb in set(votes))
        is_contested = top <= len(votes) // 2
        estimate = aggregator.process(answers)
        hit = estimate.decided_label == truth
        correct += hit
        if is_contested:
            contested += 1
            contested_correct += hit
    return {
        "accuracy": correct / len(workload),
        "contested": contested,
        "contested_accuracy": (
            contested_correct / contested if contested else 1.0
        ),
    }


def test_ablation_aggregators(benchmark):
    rows = {}

    def run():
        workload = _workload()
        rows["out"] = {
            "online EM": _evaluate(OnlineEM, workload),
            "sequential Bayes": _evaluate(SequentialBayes, workload),
            "majority vote": _evaluate(MajorityVote, workload),
        }
        return rows["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = rows["out"]

    lines = [
        f"Ablation A6 — answer aggregation ({N_EVENTS} events, "
        "10 participants incl. one adversary)",
        f"{'aggregator':<20}{'accuracy':>10}{'contested events':>18}"
        f"{'contested acc.':>16}",
    ]
    for name, stats in out.items():
        lines.append(
            f"{name:<20}{stats['accuracy']:>10.1%}"
            f"{stats['contested']:>18}"
            f"{stats['contested_accuracy']:>16.1%}"
        )
    lines.append(
        "finding: reliability-aware fusion wins exactly where the "
        "crowd splits — blind majority voting cannot discount the "
        "unreliable half of the panel."
    )
    emit("ablation_aggregators.txt", lines)

    # --- shape assertions -------------------------------------------------
    em, bayes, majority = (
        out["online EM"], out["sequential Bayes"], out["majority vote"],
    )
    # 1. All three clear the single-participant baseline.
    assert majority["accuracy"] > 0.6
    # 2. Reliability-aware methods beat blind majority overall...
    assert em["accuracy"] >= majority["accuracy"]
    assert bayes["accuracy"] >= majority["accuracy"]
    # 3. ...and clearly on contested events.
    assert em["contested_accuracy"] > majority["contested_accuracy"]
    # 4. Online EM is at least on par with the hard-update Bayes.
    assert em["accuracy"] >= bayes["accuracy"] - 0.02
