"""Ablation A7: middleware overhead of the Streams wiring.

The paper runs every component inside the Streams framework, paying
per-item data-flow overhead (queueing, copying, fan-out) on top of the
analysis work.  This ablation measures that tax in the reproduction:
the same scenario is processed (a) by the direct orchestration of
:class:`~repro.system.pipeline.UrbanTrafficSystem` and (b) through the
full Section 3 data-flow graph of
:func:`~repro.system.topology.build_paper_topology`, comparing
wall-clock and per-item throughput.  The point is not that one wins —
it is to check the middleware's cost stays a small multiple, i.e. the
architecture is affordable (the premise of deploying everything on
Streams).
"""

from __future__ import annotations

import time

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.streams import StreamRuntime
from repro.system import UrbanTrafficSystem, build_paper_topology

from conftest import emit, system_config

DURATION = 1800


def _scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=59,
            rows=12,
            cols=12,
            n_intersections=50,
            n_buses=80,
            n_lines=10,
            unreliable_fraction=0.1,
            n_incidents=6,
            incident_window=(0, DURATION),
        )
    )


def _run_direct():
    scenario = _scenario()
    system = UrbanTrafficSystem(
        scenario,
        system_config(adaptive=True, noisy_variant="crowd",
                      n_participants=30, seed=59),
    )
    t0 = time.process_time()
    report = system.run(0, DURATION)
    elapsed = time.process_time() - t0
    n_ces = sum(
        len(s.occurrences.get("disagree", []))
        for log in report.logs.values()
        for s in log.snapshots
    )
    return {"elapsed": elapsed, "alerts": len(report.console.alerts),
            "disagree_occurrences": n_ces}


def _run_middleware():
    scenario = _scenario()
    data = scenario.generate(0, DURATION)
    paper = build_paper_topology(
        scenario, data, window=600, step=300, n_participants=30, seed=59
    )
    t0 = time.process_time()
    stats = StreamRuntime(paper.topology).run()
    paper.flush(DURATION)
    elapsed = time.process_time() - t0
    return {
        "elapsed": elapsed,
        "items": stats.items_ingested,
        "ce_items": len(paper.topology.queues["complex-events"]),
    }


def test_ablation_middleware_overhead(benchmark):
    rows = {}

    def run():
        rows["direct"] = _run_direct()
        rows["middleware"] = _run_middleware()
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    direct, middleware = rows["direct"], rows["middleware"]
    ratio = middleware["elapsed"] / max(direct["elapsed"], 1e-9)

    lines = [
        "Ablation A7 — orchestration cost: direct pipeline vs the full "
        "Streams data-flow graph (same 30-minute scenario)",
        f"{'orchestration':<22}{'CPU (s)':>9}{'notes':>40}",
        f"{'direct pipeline':<22}{direct['elapsed']:>9.2f}"
        f"{str(direct['alerts']) + ' alerts':>40}",
        f"{'streams middleware':<22}{middleware['elapsed']:>9.2f}"
        f"{str(middleware['items']) + ' items through the graph':>40}",
        f"middleware/direct CPU ratio: {ratio:.2f}x",
        "finding: routing every SDE through the data-flow graph costs "
        "a small constant factor — the Streams architecture is "
        "affordable for this workload, as the paper's deployment "
        "presumes.",
    ]
    emit("ablation_middleware.txt", lines)

    # --- shape assertions -------------------------------------------------
    # 1. Both orchestrations recognise work (not vacuous runs).
    assert middleware["ce_items"] > 0
    assert direct["alerts"] > 0
    # 2. The middleware tax is bounded: well under an order of magnitude.
    assert ratio < 8.0
    # 3. Every generated record went through the graph.
    assert middleware["items"] > 0
