"""Figure 5: online EM estimation of participant quality.

The paper simulates 10 participants with error probabilities
``{0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9}``, 4
possible answers per event and ``p_i`` initialised to 0.25 (biased
towards trustful participants); every participant answers every source
disagreement.  Reported findings: the estimates converge to the true
values; after ~100 calls the quality ordering is "more or less
correct, except for participants whose error probabilities are close";
and ~94% of the posterior distributions are very peaked (max
probability > 0.99) — Section 7.2.
"""

from __future__ import annotations

import random

import pytest

from repro.crowd import (
    TRAFFIC_LABELS,
    DisagreementTask,
    OnlineEM,
    Participant,
    simulate_answers,
)

from conftest import emit

TRUE_PS = [0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9]
N_QUERIES = 1000
CHECKPOINTS = (10, 50, 100, 200, 500, 1000)


def _run_experiment(seed: int = 42):
    participants = [
        Participant(f"P{i + 1}", p) for i, p in enumerate(TRUE_PS)
    ]
    em = OnlineEM(initial_error=0.25)
    rng = random.Random(seed)
    trajectory = {}
    ranking_at_100 = None
    for t in range(1, N_QUERIES + 1):
        task = DisagreementTask(t, true_label=rng.choice(TRAFFIC_LABELS))
        em.process(simulate_answers(task, participants, rng))
        if t in CHECKPOINTS:
            trajectory[t] = [em.estimate(p.participant_id) for p in participants]
        if t == 100:
            ranking_at_100 = em.reliability_ranking()
    return em, trajectory, ranking_at_100, participants


def test_fig5_online_em_estimation(benchmark):
    result = {}

    def run():
        result["out"] = _run_experiment()
        return result["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    em, trajectory, ranking_at_100, participants = result["out"]

    lines = [
        "Figure 5 — online EM estimation of participant error rates "
        f"({N_QUERIES} source disagreements, 4 answers, p_i init 0.25)",
        "queries " + "".join(f"{p.participant_id:>7}" for p in participants),
        " truth  " + "".join(f"{p:>7.2f}" for p in TRUE_PS),
    ]
    for t in CHECKPOINTS:
        lines.append(f"{t:>6}  " + "".join(f"{e:>7.2f}" for e in trajectory[t]))
    lines.append(
        "relative estimation error at 1000 queries: "
        + " ".join(
            f"{(trajectory[1000][i] - TRUE_PS[i]) / TRUE_PS[i]:+.2f}"
            for i in range(len(TRUE_PS))
        )
    )
    lines.append(
        f"peaked posteriors (max > 0.99): {em.peaked_fraction:.1%} "
        "(paper: ~94%)"
    )
    lines.append("ranking after 100 calls: " + " > ".join(ranking_at_100))
    emit("fig5_crowd_estimation.txt", lines)
    benchmark.extra_info["peaked_fraction"] = em.peaked_fraction

    # --- shape assertions -------------------------------------------------
    # 1. Estimates converge to the true parameters.
    final = trajectory[N_QUERIES]
    for estimate, truth in zip(final, TRUE_PS):
        assert estimate == pytest.approx(truth, abs=0.08)
    # 2. Convergence improves with more queries (mean abs error shrinks).
    def mean_abs_error(values):
        return sum(abs(e - t) for e, t in zip(values, TRUE_PS)) / len(TRUE_PS)

    assert mean_abs_error(trajectory[1000]) < mean_abs_error(trajectory[10])
    # 3. Ordering after ~100 calls is coarse-correct: the three best
    #    participants all rank above the three worst.
    best = {"P1", "P2", "P3"}
    worst = {"P8", "P9", "P10"}
    assert max(ranking_at_100.index(p) for p in best) < min(
        ranking_at_100.index(p) for p in worst
    )
    # 4. The overwhelming majority of posteriors are peaked (paper: 94%).
    assert 0.85 <= em.peaked_fraction <= 1.0
