"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's evaluation artefacts
(Figures 4–9 or an ablation), prints the same rows/series the paper
reports, and writes them under ``benchmarks/out/`` so the run leaves a
reviewable record.  Scale can be reduced for smoke runs with the
``REPRO_BENCH_SCALE`` environment variable (1.0 = paper scale).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.ioutils import atomic_write_text
from repro.system import SystemConfig

OUT_DIR = Path(__file__).resolve().parent / "out"


def system_config(**overrides) -> SystemConfig:
    """Build a validated :class:`SystemConfig` for a benchmark run.

    Goes through ``SystemConfig.from_mapping`` so a typo'd override
    fails the bench loudly instead of silently running the default.
    """
    return SystemConfig.from_mapping(overrides)


def bench_scale() -> float:
    """Global scale knob: 1.0 reproduces the paper's workload sizes."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def write_series(name: str, text: str) -> Path:
    """Persist a printed series under ``benchmarks/out/``."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    atomic_write_text(path, text)
    return path


def emit(name: str, lines: list[str]) -> str:
    """Print a series and persist it; returns the rendered text."""
    text = "\n".join(lines)
    print()
    print(text)
    write_series(name, text + "\n")
    return text


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR
