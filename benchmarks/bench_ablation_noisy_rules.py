"""Ablation A3: handling unreliable buses — rule-set (4) vs (5) vs none.

The paper offers two definitions of ``noisy(Bus)``: rule-set (4)
quarantines a bus only when the crowd confirms the SCATS sensors
against it, while rule-set (5) presumes SCATS trustworthy and
quarantines on any disagreement.  Static recognition (rule-set 3)
never quarantines.  With ground truth available, this ablation
measures what each choice does to the *precision* of bus-reported
congestion: the fraction of busCongestion episodes that correspond to
real congestion at the intersection.
"""

from __future__ import annotations

import pytest

from repro.core import RTEC, RecognitionLog
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import UrbanTrafficSystem

from conftest import emit, system_config

DURATION = 2700


def _scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=23,
            rows=14,
            cols=14,
            n_intersections=60,
            n_buses=120,
            n_lines=12,
            unreliable_fraction=0.2,
            unreliable_mode="stuck_congested",
            n_incidents=6,
            incident_window=(0, DURATION),
        )
    )


def _episode_precision(scenario, report):
    """Precision of fresh busCongestion episodes vs ground truth."""
    correct = 0
    total = 0
    for log in report.logs.values():
        seen = set()
        for snapshot in log.snapshots:
            for key, intervals in snapshot.fluents.get(
                "busCongestion", {}
            ).items():
                for start, _ in intervals:
                    token = (key, start)
                    if token in seen:
                        continue
                    seen.add(token)
                    total += 1
                    node = scenario.node_of[key[0]]
                    if scenario.ground_truth.is_congested(node, start):
                        correct += 1
    return (correct / total if total else 1.0), total


def _run(mode: str):
    scenario = _scenario()
    if mode == "static":
        config = system_config(adaptive=False, crowd_enabled=False, seed=23)
    elif mode == "pessimistic":
        config = system_config(
            adaptive=True, noisy_variant="pessimistic",
            crowd_enabled=False, seed=23,
        )
    else:  # crowd-validated (rule-set 4) with the crowd loop closed
        config = system_config(
            adaptive=True, noisy_variant="crowd", crowd_enabled=True,
            n_participants=80, seed=23,
        )
    system = UrbanTrafficSystem(scenario, config)
    report = system.run(0, DURATION)
    precision, episodes = _episode_precision(scenario, report)
    return {
        "mode": mode,
        "precision": precision,
        "episodes": episodes,
        "disagreements": report.console.counts().get("source disagreement", 0),
        "resolutions": report.crowd_resolutions,
    }


def test_ablation_noisy_rule_sets(benchmark):
    rows = {}

    def run():
        rows["series"] = [
            _run("static"), _run("crowd"), _run("pessimistic"),
        ]
        return rows["series"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    series = {row["mode"]: row for row in rows["series"]}

    lines = [
        "Ablation A3 — unreliable-bus handling "
        "(20% of buses stuck reporting congestion)",
        f"{'mode':<28}{'episodes':>9}{'precision':>11}"
        f"{'disagreements':>15}{'crowd answers':>15}",
    ]
    for mode in ("static", "crowd", "pessimistic"):
        row = series[mode]
        lines.append(
            f"{mode:<28}{row['episodes']:>9}{row['precision']:>11.1%}"
            f"{row['disagreements']:>15}{row['resolutions']:>15}"
        )
    lines.append(
        "finding: both adaptive variants raise the precision of "
        "bus-reported congestion over static recognition; rule-set (5) "
        "(pessimistic) is the most aggressive filter, rule-set (4) "
        "needs crowd answers but never quarantines a truthful bus on "
        "sensor noise alone."
    )
    emit("ablation_noisy_rules.txt", lines)

    # --- shape assertions -------------------------------------------------
    static, crowd, pessimistic = (
        series["static"], series["crowd"], series["pessimistic"],
    )
    # 1. Unreliable buses flood static recognition with false episodes.
    assert static["episodes"] > 0
    # 2. Both adaptive variants filter episodes out.
    assert crowd["episodes"] <= static["episodes"]
    assert pessimistic["episodes"] < static["episodes"]
    # 3. Adaptation does not hurt precision; the pessimistic variant is
    #    at least as precise as static recognition.
    assert pessimistic["precision"] >= static["precision"]
    # 4. The crowd variant actually used crowd answers.
    assert crowd["resolutions"] > 0
