"""Figures 7–9: traffic modelling over the street network.

The paper generates the Dublin street graph from OpenStreetMap
(Figure 7), maps the SCATS locations to their nearest junctions
(Figure 8), aggregates sensor readings over fixed intervals,
grid-searches the regularized-Laplacian kernel hyperparameters within
[0, 10], and plots the Gaussian-Process flow estimates for the whole
city, shaded by value (Figure 9).

The paper reports no numeric accuracy for this component, so the bench
reports what the figures convey — full-city coverage from sparse
sensors — plus the checkable statistic the substitution enables:
estimation error at held-out junctions versus a predict-the-mean
baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dublin import DublinScenario, ScenarioConfig, greenshields_flow
from repro.traffic_model import grid_search, render_flow_map

from conftest import bench_scale, emit, write_series

SNAPSHOT_T = int(8.5 * 3600)  # morning rush snapshot


def _build():
    scale = bench_scale()
    scenario = DublinScenario(
        ScenarioConfig(
            seed=17,
            rows=28,
            cols=40,
            n_intersections=max(int(966 * scale), 30),
            n_buses=10,
            n_lines=4,
            n_incidents=8,
            incident_window=(SNAPSHOT_T - 1800, SNAPSHOT_T + 1800),
        )
    )
    network = scenario.network
    truth = {
        node: greenshields_flow(
            scenario.ground_truth.density(node, SNAPSHOT_T)
        )
        for node in network.graph.nodes
    }
    observed = {node: truth[node] for node in scenario.node_of.values()}
    return scenario, truth, observed


def _experiment():
    scenario, truth, observed = _build()
    network = scenario.network
    hidden = [n for n in network.graph.nodes if n not in observed]

    search = grid_search(
        network.graph,
        observed,
        alphas=[0.5, 2.0, 5.0, 10.0],
        betas=[0.002, 0.01, 0.05, 0.25],
        folds=3,
        noise=15.0,
        seed=17,
    )
    model = search.best_model(network.graph, noise=15.0)
    model.fit(observed)
    estimates = model.estimate()
    rmse = model.rmse({n: truth[n] for n in hidden})
    mean = float(np.mean(list(observed.values())))
    baseline = float(
        np.sqrt(np.mean([(mean - truth[n]) ** 2 for n in hidden]))
    )
    return scenario, truth, observed, hidden, search, estimates, rmse, baseline


def test_fig7_9_traffic_modelling(benchmark):
    result = {}

    def run():
        result["out"] = _experiment()
        return result["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    (scenario, truth, observed, hidden, search, estimates, rmse,
     baseline) = result["out"]
    network = scenario.network

    lines = [
        "Figures 7-9 — GP traffic modelling on the street network",
        f"street network: {network.n_junctions()} junctions, "
        f"{network.graph.number_of_edges()} segments (Figure 7 analog)",
        f"SCATS placement: {len(observed)} sensor-equipped junctions, "
        f"{len(hidden)} unobserved (Figure 8 analog)",
        f"grid search over (0, 10]: best alpha={search.alpha}, "
        f"beta={search.beta} (CV RMSE {search.rmse:.0f} veh/h)",
        f"flow RMSE at unobserved junctions: GP {rmse:.0f} veh/h vs "
        f"mean-baseline {baseline:.0f} veh/h "
        f"({(1 - rmse / baseline):.0%} better)",
        f"estimates produced for all {len(estimates)} junctions "
        "(Figure 9 analog; map in fig9_flow_map.txt)",
    ]
    emit("fig7_9_traffic_model.txt", lines)
    write_series(
        "fig9_flow_map.txt",
        render_flow_map(network.positions(), estimates, width=80, height=24)
        + "\n",
    )

    # --- shape assertions -------------------------------------------------
    # 1. Full-city coverage: an estimate at every junction.
    assert set(estimates) == set(network.graph.nodes)
    # 2. The GP beats predicting the mean at unobserved junctions.
    assert rmse < baseline
    # 3. The grid search explored the full grid.
    assert len(search.scores) == 16
    # 4. Observed junctions are reproduced closely (sensors are the
    #    anchor points of the field).
    obs_err = np.sqrt(
        np.mean(
            [(estimates[n] - truth[n]) ** 2 for n in observed]
        )
    )
    assert obs_err < rmse
