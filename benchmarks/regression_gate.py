"""Bench-regression gate for the recognition hot path.

Runs the recognition benchmarks (``bench_fig4_recognition.py``,
``bench_ablation_window_step.py`` and ``bench_throughput.py``) in
smoke mode and compares each
test's runtime against a recorded baseline, failing when throughput
regresses by more than the tolerance (default 15%).

Two defences keep the gate from firing on measurement noise rather
than code:

* every suite pass is preceded by a fixed pure-Python *calibration
  loop*, and each test's mean is normalised by the pass's calibration
  time — a machine-wide slowdown (CPU frequency scaling, a noisy CI
  neighbour) stretches both the same way and cancels out of the
  comparison, while a code regression only stretches the benchmark;
* the suite is repeated (default 3 passes) and each test's *best*
  normalised mean is compared — single-pass means of tens of
  milliseconds are scheduler noise, but a genuine regression raises
  the best-of-N floor itself.

The recorded baseline uses the same statistic.

Benchmarks publish the figures to gate via
``benchmark.extra_info["gate_metrics"]`` — process-time recognition
costs, free of the harness's wall-clock scheduling noise; tests
without them are gated on their wall-clock mean.  Results — and the
baseline being compared against — live in ``BENCH_pr8.json``::

    {
      "scale":     <REPRO_BENCH_SCALE used>,
      "baseline":  {metric_id: {"mean_s": ..., "norm": ...}},
      "latest":    {metric_id: {"mean_s": ..., "norm": ..., "cal_s": ...}},
      "info":      {test_id: <extra_info>},
      "regressions": [ ... ]                      # non-empty => fail
    }

Timings are machine-dependent, so the baseline is meaningful only for
the machine that recorded it; CI should cache ``BENCH_pr8.json`` per
runner class (see ``.github/workflows/ci.yml``) and this script
*bootstraps* — records a fresh baseline and passes — when none exists
for the current environment.

Usage::

    python benchmarks/regression_gate.py            # compare (or bootstrap)
    python benchmarks/regression_gate.py --record   # re-record the baseline
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent
DEFAULT_OUT = REPO / "BENCH_pr8.json"

#: Benchmark files guarding the recognition hot path.
BENCH_FILES = (
    "bench_fig4_recognition.py",
    "bench_ablation_window_step.py",
    "bench_throughput.py",
)

#: Allowed slowdown before the gate fails (>15% throughput regression).
DEFAULT_TOLERANCE = 0.15

#: Smoke scale used when the caller has not pinned one.
DEFAULT_SMOKE_SCALE = "0.05"

#: Repeated suite runs per gate invocation (min-of-means comparison).
DEFAULT_REPEATS = 3


def calibrate() -> float:
    """Seconds for a fixed pure-Python workload on this machine, now.

    Interpreter bytecode dispatch dominates the recognition hot path,
    so a bytecode-bound loop tracks how fast the benchmarks *can* run
    under the machine's current frequency/load state.  The loop is
    warmed before timing (the first executions in a fresh process read
    over 50% slow while the CPU ramps), then the best of seven shakes
    off scheduler preemptions without hiding a sustained slowdown.
    """
    import time

    def spin() -> float:
        t0 = time.perf_counter()
        acc = 0
        for i in range(300_000):
            acc += i & 7
        return time.perf_counter() - t0

    for _ in range(3):
        spin()
    return min(spin() for _ in range(7))


def run_benchmarks(scale: str) -> tuple[dict[str, dict], dict[str, dict]]:
    """Run the gated benchmark files once.

    Returns ``(metrics, info)``: the gated timing per metric name, and
    each test's full ``extra_info`` for the report.  A test publishing
    ``extra_info["gate_metrics"]`` is gated on those process-time
    figures (one metric per entry, named ``test::metric``); a test
    without them falls back to its wall-clock mean.

    A failed pytest run is retried once — the gate measures throughput
    and must not turn one transient test flake into a red build; a
    *repeatable* failure still aborts.
    """
    for attempt in (1, 2):
        with tempfile.TemporaryDirectory() as tmp:
            json_path = Path(tmp) / "bench.json"
            env = dict(os.environ)
            env.setdefault("REPRO_BENCH_SCALE", scale)
            src = str(REPO / "src")
            env["PYTHONPATH"] = (
                src + os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH")
                else src
            )
            cmd = [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "no:cacheprovider",
                f"--benchmark-json={json_path}",
                *BENCH_FILES,
            ]
            proc = subprocess.run(
                cmd, cwd=HERE, env=env, capture_output=True, text=True
            )
            if proc.returncode == 0:
                document = json.loads(json_path.read_text())
                break
            print(
                f"benchmark pass failed (exit {proc.returncode}, "
                f"attempt {attempt}); pytest output tail:"
            )
            print("\n".join(proc.stdout.splitlines()[-30:]))
    else:
        raise SystemExit(
            "benchmark run failed twice; "
            "fix the failing benchmark before gating throughput"
        )
    metrics: dict[str, dict] = {}
    info: dict[str, dict] = {}
    for bench in document.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        info[bench["name"]] = extra
        gated = extra.get("gate_metrics")
        if gated:
            for metric, seconds in gated.items():
                metrics[f"{bench['name']}::{metric}"] = {"mean_s": seconds}
        else:
            metrics[bench["name"]] = {"mean_s": bench["stats"]["mean"]}
    return metrics, info


def best_of(
    scale: str, repeats: int
) -> tuple[dict[str, dict], dict[str, dict]]:
    """Repeat the suite, keeping each metric's best calibration-
    normalised value (units: multiples of the calibration workload)."""
    best: dict[str, dict] = {}
    info: dict[str, dict] = {}
    for _ in range(max(repeats, 1)):
        cal_before = calibrate()
        metrics, pass_info = run_benchmarks(scale)
        # Average the machine-speed samples taken on both sides of the
        # pass so frequency drift *during* it is first-order cancelled.
        cal = (cal_before + calibrate()) / 2.0
        info.update(pass_info)
        for name, entry in metrics.items():
            entry["cal_s"] = cal
            entry["norm"] = entry["mean_s"] / cal
            seen = best.get(name)
            if seen is None or entry["norm"] < seen["norm"]:
                best[name] = entry
    return best, info


def compare(
    baseline: dict[str, dict],
    latest: dict[str, dict],
    tolerance: float,
) -> list[str]:
    """Regression messages for tests whose calibration-normalised mean
    exceeds the baseline's by more than the tolerance."""
    regressions = []
    for name, entry in sorted(latest.items()):
        base = baseline.get(name)
        if base is None:
            continue  # new benchmark: becomes part of the next baseline
        allowed = base["norm"] * (1.0 + tolerance)
        if entry["norm"] > allowed:
            regressions.append(
                f"{name}: {entry['norm']:.1f} vs baseline "
                f"{base['norm']:.1f} calibration units "
                f"(+{entry['norm'] / base['norm'] - 1.0:.0%}, "
                f"allowed +{tolerance:.0%}; "
                f"wall {entry['mean_s']:.4f}s vs {base['mean_s']:.4f}s)"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        action="store_true",
        help="re-record the baseline from this run instead of comparing",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"result/baseline file (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before failing (default 0.15)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="suite runs per invocation; the fastest mean per test is "
        f"compared (default {DEFAULT_REPEATS})",
    )
    args = parser.parse_args(argv)

    scale = os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SMOKE_SCALE)
    previous = (
        json.loads(args.out.read_text()) if args.out.exists() else {}
    )
    baseline = previous.get("baseline", {})
    stale = previous.get("scale") not in (None, scale) or any(
        "norm" not in entry for entry in baseline.values()
    )

    latest, info = best_of(scale, args.repeats)
    if baseline and not set(baseline) & set(latest):
        stale = True  # metric naming changed: nothing is comparable
    if baseline and latest and not stale:
        # A baseline recorded on a very different machine class (e.g. a
        # checked-in dev-machine file seeding a CI runner) is not a
        # meaningful floor even after normalisation: re-record instead
        # of failing on hardware differences.
        base = next(iter(baseline.values()))
        base_cal = base["mean_s"] / base["norm"]
        ratio = next(iter(latest.values()))["cal_s"] / base_cal
        if not 0.6 <= ratio <= 1.67:
            stale = True

    record = args.record or not baseline or stale
    if record and stale and baseline:
        print(
            f"baseline is stale (recorded at scale "
            f"{previous.get('scale')} or with other metrics): re-recording"
        )
    regressions = (
        [] if record else compare(baseline, latest, args.tolerance)
    )
    document = {
        "scale": scale,
        "baseline": (
            {
                k: {"mean_s": v["mean_s"], "norm": v["norm"]}
                for k, v in latest.items()
            }
            if record
            else baseline
        ),
        "latest": latest,
        "info": info,
        "regressions": regressions,
    }
    # Atomic replace: a crash (or Ctrl-C) mid-write must not corrupt
    # the committed baseline file.
    tmp = args.out.with_name(args.out.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, args.out)

    if record:
        print(f"recorded baseline for {len(latest)} benchmarks -> {args.out}")
        return 0
    if regressions:
        print("throughput regressions detected:")
        for line in regressions:
            print(f"  {line}")
        print(f"details -> {args.out}")
        return 1
    print(
        f"no throughput regression (> {args.tolerance:.0%}) across "
        f"{len(latest)} benchmarks -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
