"""Ablation A2: batch EM vs online EM, and the step-size sequence.

The paper adopts online EM because batch EM "needs to operate in batch
mode, which is not acceptable for our large, streaming problem"
(Section 5.2).  This ablation quantifies what the choice costs and
buys on the Figure 5 workload:

* accuracy: final mean absolute error of the error-rate estimates;
* cost: batch EM rescans all T events every time it is re-run, while
  online EM does O(1) work per event and keeps only (p_i, t_i);
* the step-size sequence: the convergent ``γ_t = 1/(t+1)`` versus the
  paper's literally-printed ``γ_t = t/(t+1)`` (which violates the
  Robbins-Monro conditions the paper itself states — see DESIGN.md).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.crowd import (
    TRAFFIC_LABELS,
    BatchEM,
    DisagreementTask,
    OnlineEM,
    Participant,
    harmonic_gamma,
    paper_printed_gamma,
    simulate_answers,
)

from conftest import emit

TRUE_PS = {
    f"P{i + 1}": p
    for i, p in enumerate(
        [0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9]
    )
}
N_EVENTS = 600


def _answer_sets(seed=11):
    rng = random.Random(seed)
    participants = [Participant(pid, p) for pid, p in TRUE_PS.items()]
    return [
        simulate_answers(
            DisagreementTask(t, true_label=rng.choice(TRAFFIC_LABELS)),
            participants,
            rng,
        )
        for t in range(1, N_EVENTS + 1)
    ]


def _mae(estimates) -> float:
    return sum(
        abs(estimates(pid) - p) for pid, p in TRUE_PS.items()
    ) / len(TRUE_PS)


def _experiment():
    answer_sets = _answer_sets()

    t0 = time.process_time()
    batch_result = BatchEM().fit(answer_sets)
    batch_time = time.process_time() - t0

    online = OnlineEM(gamma=harmonic_gamma)
    t0 = time.process_time()
    for answers in answer_sets:
        online.process(answers)
    online_time = time.process_time() - t0

    printed = OnlineEM(gamma=paper_printed_gamma)
    for answers in answer_sets:
        printed.process(answers)

    # Streaming comparison: batch EM re-fit at every 100th event (the
    # periodic re-evaluation strategy the paper rejects).
    t0 = time.process_time()
    for upto in range(100, N_EVENTS + 1, 100):
        BatchEM(max_iterations=50).fit(answer_sets[:upto])
    periodic_batch_time = time.process_time() - t0

    return {
        "batch_mae": _mae(lambda pid: batch_result.error_probabilities[pid]),
        "online_mae": _mae(online.estimate),
        "printed_mae": _mae(printed.estimate),
        "batch_time": batch_time,
        "online_time": online_time,
        "periodic_batch_time": periodic_batch_time,
        "batch_iterations": batch_result.iterations,
    }


def test_ablation_batch_vs_online_em(benchmark):
    result = {}

    def run():
        result["out"] = _experiment()
        return result["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = result["out"]

    lines = [
        f"Ablation A2 — batch vs online EM ({N_EVENTS} events, "
        "10 participants)",
        f"{'estimator':<38}{'MAE':>8}{'CPU (s)':>10}",
        f"{'batch EM (single fit, ' + str(out['batch_iterations']) + ' iters)':<38}"
        f"{out['batch_mae']:>8.3f}{out['batch_time']:>10.3f}",
        f"{'online EM (gamma=1/(t+1))':<38}"
        f"{out['online_mae']:>8.3f}{out['online_time']:>10.3f}",
        f"{'online EM (printed gamma=t/(t+1))':<38}"
        f"{out['printed_mae']:>8.3f}{'':>10}",
        f"{'batch EM re-fit every 100 events':<38}"
        f"{'':>8}{out['periodic_batch_time']:>10.3f}",
        "finding: online EM approaches batch accuracy at a fraction of "
        "the streaming cost; the printed step-size never converges.",
    ]
    emit("ablation_em.txt", lines)

    # --- shape assertions -------------------------------------------------
    # 1. Batch EM is the accuracy ceiling; online EM comes close.
    assert out["batch_mae"] < 0.06
    assert out["online_mae"] < out["batch_mae"] + 0.05
    # 2. The printed step-size sequence is clearly worse.
    assert out["printed_mae"] > 2 * out["online_mae"]
    # 3. Streaming with periodic batch re-fits costs far more CPU than
    #    the online pass.
    assert out["periodic_batch_time"] > 3 * out["online_time"]
