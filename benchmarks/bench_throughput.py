"""Ingest-throughput gate: the columnar hot path vs the Dublin rate.

The paper's deployment receives "data from buses every 20 or 30
seconds" from the operating subset of a 942-bus fleet plus a SCATS
reading per sensor every six minutes — about one SDE every ~2 s
fleet-wide at the city scale the evaluation streams (Section 7.1).
A single-process recognition loop must comfortably outrun that rate
to leave headroom for redelivery storms, catch-up after an outage and
the later sharded deployment.

This bench drives the full columnar path end to end — array-native
batches built with :meth:`EventColumns.from_arrays` (no ``Event``
object exists before admission), one :class:`SDEColumns` hand-off per
recognition step, compiled rule evaluation over the working-memory
mirrors — and asserts the sustained ingest rate is at least
``REQUIRED_MULTIPLE`` times the paper's arrival rate.  A second pass
pins the interpreter (``compiled=False``) so the report shows what the
compiled path buys on identical input.

The compiled pass's wall time feeds the calibration-normalised
regression gate (``benchmarks/regression_gate.py``): once recorded in
the baseline, a later PR that slows the columnar path by >15% fails
the gate even while still clearing the absolute multiple.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import RTEC
from repro.core.columns import EventColumns, SDEColumns
from repro.core.traffic import (
    build_traffic_definitions,
    default_traffic_params,
)
from repro.core.traffic.topology import Intersection, ScatsTopology

from conftest import bench_scale, emit

#: The paper's fleet-wide arrival rate: one SDE every ~2 seconds.
DUBLIN_SDE_RATE = 0.5
#: Required sustained ingest multiple over that rate (ISSUE 6 gate).
REQUIRED_MULTIPLE = 10.0

WINDOW_S = 600
STEP_S = 300
#: Per-sensor reading period of the synthetic stream (denser than the
#: paper's 6-minute SCATS cycle so the bench saturates the engine).
READ_PERIOD_S = 30


def _topology(n_intersections: int) -> ScatsTopology:
    """A synthetic SCATS deployment, two detectors per intersection."""
    intersections = []
    for i in range(n_intersections):
        int_id = f"I{i:03d}"
        intersections.append(
            Intersection(
                id=int_id,
                lon=-6.30 + 0.004 * (i % 20),
                lat=53.32 + 0.003 * (i // 20),
                sensors=(
                    (int_id, "N", "det1"),
                    (int_id, "S", "det2"),
                ),
            )
        )
    return ScatsTopology(intersections)


def _build_batches(
    topology: ScatsTopology, duration: int
) -> list[tuple[int, SDEColumns]]:
    """One array-native :class:`SDEColumns` batch per recognition step.

    Built entirely from numpy arrays: per sensor, a reading every
    ``READ_PERIOD_S`` seconds with density swinging through the
    congestion and trend thresholds so the compiled rules derive real
    CEs rather than skating over empty masks.
    """
    sensors = [
        key for int_id in topology.ids() for key in topology.sensors_of(int_id)
    ]
    n_sensors = len(sensors)
    ticks = np.arange(READ_PERIOD_S, duration + 1, READ_PERIOD_S, np.int64)
    n_ticks = len(ticks)
    # Row-major (tick, sensor) layout: each step's rows are contiguous.
    times = np.repeat(ticks, n_sensors)
    phase = np.arange(n_sensors, dtype=np.float64) * 0.7
    tick_angle = ticks.astype(np.float64) / 600.0
    density = 90.0 + 80.0 * np.sin(
        tick_angle[:, None] + phase[None, :]
    )
    flow = np.where(density > 120.0, 300.0, 900.0) + 2.0 * (
        density % 7.0
    )
    inter_col = [key[0] for key in sensors] * n_ticks
    approach_col = [key[1] for key in sensors] * n_ticks
    sensor_col = [key[2] for key in sensors] * n_ticks

    batches: list[tuple[int, SDEColumns]] = []
    rows_per_step = (STEP_S // READ_PERIOD_S) * n_sensors
    for start in range(0, n_ticks * n_sensors, rows_per_step):
        stop = min(start + rows_per_step, n_ticks * n_sensors)
        block = EventColumns.from_arrays(
            "traffic",
            times[start:stop],
            numeric={
                "density": density.ravel()[start:stop],
                "flow": flow.ravel()[start:stop],
            },
            extra={
                "intersection": inter_col[start:stop],
                "approach": approach_col[start:stop],
                "sensor": sensor_col[start:stop],
            },
        )
        q = int(times[stop - 1])
        batches.append((q, SDEColumns(events=(block,), facts=())))
    return batches


def _make_engine(topology: ScatsTopology, compiled: bool) -> RTEC:
    definitions = build_traffic_definitions(
        topology,
        adaptive=False,
        noisy_variant="pessimistic",
        feeds=("scats",),
    )
    return RTEC(
        definitions,
        window=WINDOW_S,
        step=STEP_S,
        params=default_traffic_params(),
        compiled=compiled,
    )


def _ingest_pass(
    topology: ScatsTopology,
    batches: list[tuple[int, SDEColumns]],
    *,
    compiled: bool,
) -> dict:
    """Feed every step batch and query; return rate and output size."""
    engine = _make_engine(topology, compiled)
    n_sdes = sum(batch.n for _, batch in batches)
    n_points = 0
    t0 = time.perf_counter()
    for q, batch in batches:
        engine.feed_columns(batch)
        snapshot = engine.query(q)
        n_points += sum(len(v) for v in snapshot.occurrences.values())
        n_points += sum(
            len(il)
            for groups in snapshot.fluents.values()
            for il in groups.values()
        )
    elapsed = time.perf_counter() - t0
    return {
        "n_sdes": n_sdes,
        "elapsed_s": elapsed,
        "sde_per_s": n_sdes / elapsed if elapsed > 0 else float("inf"),
        "n_outputs": n_points,
    }


@pytest.mark.bench_smoke
def test_columnar_ingest_throughput(benchmark):
    """Sustained columnar ingest ≥ 10x the Dublin arrival rate."""
    scale = bench_scale()
    topology = _topology(max(int(60 * scale), 6))
    duration = max(int(3600 * min(scale * 4, 1.0)), 4 * STEP_S)
    batches = _build_batches(topology, duration)

    def run() -> tuple[dict, dict]:
        return (
            _ingest_pass(topology, batches, compiled=True),
            _ingest_pass(topology, batches, compiled=False),
        )

    columnar, interp = benchmark.pedantic(run, rounds=1, iterations=1)
    multiple = columnar["sde_per_s"] / DUBLIN_SDE_RATE
    speedup = (
        columnar["sde_per_s"] / interp["sde_per_s"]
        if interp["sde_per_s"] > 0
        else float("inf")
    )

    lines = [
        "Ingest throughput — columnar/compiled hot path "
        f"({columnar['n_sdes']} SDEs over {duration}s of stream, "
        f"{len(batches)} step batches)",
        f"{'path':<22} {'SDE/s':>12} {'wall (s)':>10} {'outputs':>9}",
        f"{'columnar+compiled':<22} {columnar['sde_per_s']:>12.0f} "
        f"{columnar['elapsed_s']:>10.3f} {columnar['n_outputs']:>9}",
        f"{'interpreter':<22} {interp['sde_per_s']:>12.0f} "
        f"{interp['elapsed_s']:>10.3f} {interp['n_outputs']:>9}",
        f"gate: {columnar['sde_per_s']:.0f} SDE/s = "
        f"{multiple:.0f}x the Dublin rate ({DUBLIN_SDE_RATE} SDE/s); "
        f"required >= {REQUIRED_MULTIPLE:.0f}x; "
        f"compiled speedup {speedup:.2f}x",
    ]
    emit("throughput.txt", lines)

    benchmark.extra_info["series"] = {
        "columnar": columnar,
        "interpreter": interp,
        "multiple": multiple,
    }
    # Wall time of the fixed compiled-pass workload: the figure the
    # calibration-normalised regression gate tracks across PRs.
    benchmark.extra_info["gate_metrics"] = {
        "columnar_ingest_s": columnar["elapsed_s"],
        "interpreter_ingest_s": interp["elapsed_s"],
    }

    # --- gate assertions --------------------------------------------------
    # 1. Both paths recognised the same number of output points (the
    #    cheap end-to-end parity signal; the full one is in tests/).
    assert columnar["n_outputs"] == interp["n_outputs"]
    assert columnar["n_outputs"] > 0
    # 2. The absolute throughput gate of ISSUE 6.
    assert multiple >= REQUIRED_MULTIPLE, (
        f"columnar ingest sustained only {columnar['sde_per_s']:.1f} "
        f"SDE/s = {multiple:.1f}x the Dublin rate "
        f"(required {REQUIRED_MULTIPLE:.0f}x)"
    )
