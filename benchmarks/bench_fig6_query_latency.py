"""Figure 6: crowdsourcing query execution engine latency.

The paper measures, per connection type (2G / 3G / WiFi), the latency
of the engine's three steps, averaged over 10 crowdsourcing task
executions: *trigger task* (worker selection + assignment; 38–55 ms,
engine-side only), *send push notification* (2G 467 ms, 3G 169 ms,
WiFi 184 ms) and *communication time* (2G 423 ms, 3G 171 ms, WiFi
182 ms).  Human response times are excluded.  Headline: even on 2G the
end-to-end engine latency stays under one second.
"""

from __future__ import annotations

import pytest

from repro.crowd import (
    CrowdQuery,
    DisagreementTask,
    Participant,
    QueryExecutionEngine,
)

from conftest import emit

CONNECTIONS = ("2g", "3g", "wifi")
N_EXECUTIONS = 10

#: The paper's reported means (ms) for shape comparison.
PAPER_PUSH = {"2g": 467.0, "3g": 169.0, "wifi": 184.0}
PAPER_COMM = {"2g": 423.0, "3g": 171.0, "wifi": 182.0}


def _measure():
    """10 crowdsourcing task executions per connection type."""
    means = {}
    for connection in CONNECTIONS:
        engine = QueryExecutionEngine(seed=6)
        engine.register(
            Participant("worker", 0.1, connection=connection)
        )
        rows = {"trigger": [], "push": [], "communication": []}
        for t in range(N_EXECUTIONS):
            task = DisagreementTask(t + 1, true_label="congestion")
            result = engine.execute(CrowdQuery(task=task))
            execution = result.executions[0]
            rows["trigger"].append(execution.trigger_ms)
            rows["push"].append(execution.push_ms)
            rows["communication"].append(execution.communication_ms)
        means[connection] = {
            step: sum(values) / len(values) for step, values in rows.items()
        }
    return means


@pytest.mark.bench_smoke
def test_fig6_query_engine_latency(benchmark):
    means = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = [
        "Figure 6 — crowdsourcing query execution engine latency "
        f"(mean of {N_EXECUTIONS} task executions per connection, ms)",
        f"{'step':<26}{'2G':>8}{'3G':>8}{'WiFi':>8}",
    ]
    for step in ("trigger", "push", "communication"):
        lines.append(
            f"{step:<26}"
            + "".join(f"{means[c][step]:>8.0f}" for c in CONNECTIONS)
        )
    lines.append(
        f"{'end-to-end (engine side)':<26}"
        + "".join(
            f"{sum(means[c].values()):>8.0f}" for c in CONNECTIONS
        )
    )
    lines.append(
        "paper: trigger 38-55; push 467/169/184; comm 423/171/182; "
        "end-to-end < 1 s even on 2G."
    )
    emit("fig6_query_latency.txt", lines)

    # --- shape assertions -------------------------------------------------
    for connection in CONNECTIONS:
        # 1. Trigger latency is small and connection-independent.
        assert 30.0 <= means[connection]["trigger"] <= 60.0
        # 2. Per-step means track the paper's calibration within 20%.
        assert means[connection]["push"] == pytest.approx(
            PAPER_PUSH[connection], rel=0.2
        )
        assert means[connection]["communication"] == pytest.approx(
            PAPER_COMM[connection], rel=0.2
        )
        # 3. End-to-end engine latency under one second.
        assert sum(means[connection].values()) < 1000.0
    # 4. 2G is the slow outlier; 3G and WiFi are comparable.
    assert means["2g"]["push"] > 2 * means["3g"]["push"]
    assert means["2g"]["communication"] > 2 * means["wifi"]["communication"]
    assert means["3g"]["push"] == pytest.approx(
        means["wifi"]["push"], rel=0.5
    )
