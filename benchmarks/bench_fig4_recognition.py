"""Figure 4: event recognition performance vs working-memory size.

The paper streams one month of Dublin data (942 buses emitting every
20–30 s — one SDE every ~2 s on average for the *operating* subset —
plus 966 SCATS sensors every 6 min) into RTEC and reports the average
CE recognition time per query for working memories from 10 min
(≈12.5 k SDEs) to 110 min (≈152 k SDEs), for *static* and
*self-adaptive* recognition, with recognition distributed over the four
city regions.  Both curves grow roughly linearly with the window, the
self-adaptive overhead is minimal, and recognition stays well under
real time (the paper's worst case is ~8 s for a 110-minute window).

This bench regenerates the series on the synthetic stream, scaled to
the paper's SDE density (≈21 SDEs/s fleet-wide).
"""

from __future__ import annotations

import gc

import pytest

from repro.core import RTEC, RecognitionLog
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.dublin import DublinScenario, ScenarioConfig

from conftest import bench_scale, emit

#: Paper series: working-memory sizes in minutes.
WM_MINUTES = (10, 30, 50, 70, 90, 110)
STEP_S = 600  # 10-minute step, the smallest WM in the series

#: High-overlap configuration for the incremental-vs-legacy gate:
#: window/step = 8, so consecutive windows share 87.5% of their SDEs.
SPEEDUP_WINDOW_S = 8 * STEP_S


def _scenario_and_split():
    """The 110-minute stream at the paper's SDE density, pre-split by
    region (recognition is distributed as in Section 7.1)."""
    scale = bench_scale()
    scenario = DublinScenario(
        ScenarioConfig(
            seed=4,
            n_buses=max(int(450 * scale), 20),
            n_lines=30,
            n_intersections=max(int(350 * scale), 20),
            unreliable_fraction=0.05,
            n_incidents=10,
            incident_window=(0, 110 * 60),
        )
    )
    data = scenario.generate(0, 110 * 60 + STEP_S)
    return scenario, data, scenario.split_by_region(data)


def _recognition_series(scenario, data, split, adaptive: bool):
    """Mean recognition time per query for every WM size.

    For each WM the four per-region engines answer four consecutive
    query times; the first is discarded as warm-up (allocator and cache
    effects dominate the smallest windows otherwise) and the reported
    cost of one recognition step is the sum over regions (the paper
    used four processors in parallel, so the wall-clock would be the
    max; we report both).
    """
    params = default_traffic_params()
    series = []
    for wm_minutes in WM_MINUTES:
        # Timing hygiene: collect garbage from the previous
        # configuration, then keep the collector out of the timed
        # queries (its pauses would be charged to arbitrary rows).
        gc.collect()
        gc.disable()
        window = wm_minutes * 60
        per_query_totals = []
        per_query_max = []
        n_sdes = 0
        logs = {}
        engines = {}
        for region, (events, facts) in split.items():
            definitions = build_traffic_definitions(
                scenario.topology,
                adaptive=adaptive,
                noisy_variant="pessimistic",
            )
            engine = RTEC(
                definitions, window=window, step=STEP_S, params=params,
                start=window - STEP_S,
            )
            engine.feed(events, facts)
            engines[region] = engine
            logs[region] = RecognitionLog()
        for i in range(4):
            q = window + i * STEP_S
            elapsed = {}
            for region, engine in engines.items():
                snapshot = engine.query(q)
                logs[region].add(snapshot)
                elapsed[region] = snapshot.elapsed
                if i == 0:
                    n_sdes += snapshot.n_events
            if i == 0:
                continue  # warm-up query: exclude from the averages
            per_query_totals.append(sum(elapsed.values()))
            per_query_max.append(max(elapsed.values()))
        gc.enable()
        series.append(
            {
                "wm_minutes": wm_minutes,
                "n_sdes": n_sdes,
                "mean_total_s": sum(per_query_totals) / len(per_query_totals),
                "mean_max_region_s": sum(per_query_max) / len(per_query_max),
            }
        )
    return series


@pytest.fixture(scope="module")
def workload():
    return _scenario_and_split()


def test_fig4_recognition_performance(benchmark, workload):
    scenario, data, split = workload

    results = {}

    def run():
        results["static"] = _recognition_series(
            scenario, data, split, adaptive=False
        )
        results["adaptive"] = _recognition_series(
            scenario, data, split, adaptive=True
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    static, adaptive = results["static"], results["adaptive"]

    lines = [
        "Figure 4 — event recognition performance "
        f"(stream: {data.n_sdes} SDEs over {data.end - data.start}s, "
        f"{data.sde_rate():.1f} SDE/s; 4-region distribution)",
        f"{'WM (min)':>8} {'#SDEs':>9} {'static (s)':>12} "
        f"{'adaptive (s)':>13} {'overhead':>9} {'max-region (s)':>15}",
    ]
    for s, a in zip(static, adaptive):
        overhead = (
            (a["mean_total_s"] - s["mean_total_s"]) / s["mean_total_s"]
            if s["mean_total_s"] > 0
            else 0.0
        )
        lines.append(
            f"{s['wm_minutes']:>8} {s['n_sdes']:>9} "
            f"{s['mean_total_s']:>12.3f} {a['mean_total_s']:>13.3f} "
            f"{overhead:>8.0%} {a['mean_max_region_s']:>15.3f}"
        )
    lines.append(
        "paper shape: both curves grow with WM; self-adaptive overhead "
        "minimal; real-time (time per query << WM span)."
    )
    emit("fig4_recognition.txt", lines)
    benchmark.extra_info["series"] = {"static": static, "adaptive": adaptive}
    # Process-time recognition costs for the regression gate: summed
    # over the WM series, they track the hot path without the
    # wall-clock scheduling noise of the surrounding harness.
    benchmark.extra_info["gate_metrics"] = {
        "static_recognition_s": sum(r["mean_total_s"] for r in static),
        "adaptive_recognition_s": sum(r["mean_total_s"] for r in adaptive),
    }

    # --- shape assertions -------------------------------------------------
    # 1. Cost grows with the window for both modes.
    assert static[-1]["mean_total_s"] > static[0]["mean_total_s"]
    assert adaptive[-1]["mean_total_s"] > adaptive[0]["mean_total_s"]
    # 2. SDE counts grow ~linearly with WM (the x-axis of Figure 4).
    assert static[-1]["n_sdes"] > 5 * static[0]["n_sdes"]
    # 3. Self-adaptive recognition has limited overhead over static:
    #    per row it never blows up (noise allowance 2.25x) and on
    #    average it stays under 2x (the paper calls it minimal).
    overheads = []
    for s, a in zip(static, adaptive):
        assert a["mean_total_s"] <= s["mean_total_s"] * 2.25 + 0.05
        if s["mean_total_s"] > 0:
            overheads.append(a["mean_total_s"] / s["mean_total_s"])
    assert sum(overheads) / len(overheads) < 2.0
    # 4. Real-time: a recognition step costs far less than the step span.
    assert adaptive[-1]["mean_total_s"] < STEP_S


# ---------------------------------------------------------------------------
# Incremental recognition: cross-window caching vs recompute-per-query
# ---------------------------------------------------------------------------
def _serialise(snapshot):
    """One query's recognition output in a directly comparable form
    (empty entries dropped, as in the golden-trace fixtures)."""
    occurrences = {
        name: [(o.key, o.time) for o in occs]
        for name, occs in snapshot.occurrences.items()
        if occs
    }
    fluents = {
        name: {
            key: [[s, e] for s, e in intervals]
            for key, intervals in by_key.items()
            if intervals
        }
        for name, by_key in snapshot.fluents.items()
    }
    return {"q": snapshot.query_time, "occ": occurrences, "fluents": fluents}


def _steady_state_run(scenario, data, *, incremental: bool):
    """Five consecutive queries at window/step = 8 over the full
    (unsplit) stream; the first fills the working memory and cache in
    both modes and is excluded from the timings.

    Rule compilation is pinned OFF: this differential gates the
    *cross-window caching* layer in isolation, and compiled rule
    bodies (``bench_throughput.py``'s subject) make the legacy
    recompute cheap enough to dilute the caching signal it measures.
    """
    engine = RTEC(
        build_traffic_definitions(
            scenario.topology, adaptive=True, noisy_variant="pessimistic"
        ),
        window=SPEEDUP_WINDOW_S,
        step=STEP_S,
        params=default_traffic_params(),
        start=SPEEDUP_WINDOW_S - STEP_S,
        incremental=incremental,
        compiled=False,
    )
    engine.feed(data.events, data.facts)
    trace, steady = [], []
    gc.collect()
    gc.disable()
    try:
        for i in range(5):
            snapshot = engine.query(SPEEDUP_WINDOW_S + i * STEP_S)
            trace.append(_serialise(snapshot))
            if i > 0:
                steady.append(snapshot.elapsed)
    finally:
        gc.enable()
    return trace, steady


def _warm_position_cache(scenario, data):
    """Prime the topology's ``close``-predicate memo with every gps
    position in the stream.  The memo persists on the (shared) scenario
    topology, so whichever engine runs first would otherwise pay the
    cold spatial-grid probes for both — warming it up front makes the
    legacy/incremental comparison mode-only and order-independent."""
    topology = scenario.topology
    for fact in data.facts:
        if fact.name == "gps":
            value = fact.value
            topology.intersections_close_to(value["lon"], value["lat"])


def test_incremental_speedup_high_overlap(benchmark, workload):
    """Acceptance gate for cross-window caching: at window/step = 8 the
    incremental engine must recognise at least 2x faster than the
    legacy recompute-per-query path in steady state — while producing
    the *identical* recognition trace, query by query."""
    scenario, data, _split = workload
    results = {}

    def run():
        _warm_position_cache(scenario, data)
        results["legacy"] = _steady_state_run(
            scenario, data, incremental=False
        )
        results["incremental"] = _steady_state_run(
            scenario, data, incremental=True
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    legacy_trace, legacy_times = results["legacy"]
    incr_trace, incr_times = results["incremental"]
    legacy_mean = sum(legacy_times) / len(legacy_times)
    incr_mean = sum(incr_times) / len(incr_times)
    speedup = legacy_mean / incr_mean

    emit(
        "fig4_incremental_speedup.txt",
        [
            "Incremental recognition vs legacy recompute "
            f"(window {SPEEDUP_WINDOW_S}s, step {STEP_S}s, "
            "adaptive suite, steady state over 4 queries)",
            f"legacy       mean {legacy_mean:.4f}s  "
            f"({', '.join(f'{t:.4f}' for t in legacy_times)})",
            f"incremental  mean {incr_mean:.4f}s  "
            f"({', '.join(f'{t:.4f}' for t in incr_times)})",
            f"speedup      {speedup:.2f}x (gate: >= 2x, identical output)",
        ],
    )
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["legacy_mean_s"] = legacy_mean
    benchmark.extra_info["incremental_mean_s"] = incr_mean
    benchmark.extra_info["gate_metrics"] = {
        "legacy_steady_query_s": legacy_mean,
        "incremental_steady_query_s": incr_mean,
    }

    # The differential comes first: a fast wrong answer is no answer.
    assert incr_trace == legacy_trace
    assert speedup >= 2.0


# ---------------------------------------------------------------------------
# Checkpoint overhead: durability must not tax the recognition loop
# ---------------------------------------------------------------------------
CKPT_STEPS = 12
CKPT_STEP_S = 300


def _pipeline_factory(**config_overrides):
    """A fresh integrated pipeline for one timed run (runs mutate the
    system *and* advance the scenario RNG, so every attempt needs its
    own of both).  ``config_overrides`` land on the
    :class:`~repro.system.SystemConfig` — the sharded-overhead gate
    builds its two sides from the same factory this way."""
    from repro.system import SystemConfig, UrbanTrafficSystem

    # Floors are deliberately high for an overhead *ratio*: on a
    # near-empty workload the fixed cost of serialising the street
    # graph would swamp the percentage and gate nothing meaningful.
    scale = bench_scale()

    def build():
        scenario = DublinScenario(
            ScenarioConfig(
                seed=4,
                n_buses=max(int(240 * scale), 100),
                n_lines=10,
                n_intersections=max(int(80 * scale), 30),
                n_incidents=4,
                incident_window=(0, CKPT_STEPS * CKPT_STEP_S),
            )
        )
        config = dict(n_participants=15, seed=4)
        config.update(config_overrides)
        return UrbanTrafficSystem(
            scenario,
            SystemConfig(**config),
        ), scenario

    return build


def test_checkpoint_overhead(benchmark):
    """Durability gate: running with the checkpoint coordinator at the
    default ``checkpoint_interval`` adds at most 10% to the recognition
    run.

    The gate measures the coordinator's *direct* cost — the time spent
    inside checkpoint writes (``recovery.checkpoint.seconds``) and
    journal appends (``recovery.journal.seconds``), both instrumented
    at the exact call sites — as a fraction of the plain run's wall
    time.  Wall-clock deltas between whole runs are reported for
    context but not gated on: identical plain runs on a shared machine
    vary by tens of percent (scheduler noise dwarfs the tens of
    milliseconds of actual durability work), while the in-situ timers
    capture precisely the work the coordinator adds and nothing else.
    A call-count audit confirms the coordinator adds no hidden
    recognition work, so direct cost *is* the overhead."""
    import tempfile
    from time import perf_counter

    from repro.recovery import run_with_recovery

    build = _pipeline_factory()
    end = CKPT_STEPS * CKPT_STEP_S
    results = {}

    def run():
        plain_times, ckpt_times, direct_times = [], [], []
        writes = 0
        # Interleave plain/checkpointed attempts so both sides sample
        # the same machine-load conditions.
        for _ in range(3):
            system, _ = build()
            gc.collect()
            t0 = perf_counter()
            system.run(0, end)
            plain_times.append(perf_counter() - t0)

            system, _ = build()
            with tempfile.TemporaryDirectory() as directory:
                gc.collect()
                t0 = perf_counter()
                outcome = run_with_recovery(system, 0, end, directory)
                ckpt_times.append(perf_counter() - t0)
                metrics = outcome.report.metrics
                writes = metrics["counters"]["recovery.checkpoint.writes"]
                timings = metrics["timings"]
                direct_times.append(
                    timings["recovery.checkpoint.seconds"]["total"]
                    + timings["recovery.journal.seconds"]["total"]
                )
        results["plain"] = min(plain_times)
        results["ckpt"] = min(ckpt_times)
        results["direct"] = min(direct_times)
        results["writes"] = writes
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    plain, ckpt = results["plain"], results["ckpt"]
    direct = results["direct"]
    overhead = direct / plain
    wall_delta = ckpt / plain - 1.0

    emit(
        "fig4_checkpoint_overhead.txt",
        [
            "Checkpoint overhead at the default interval "
            f"({CKPT_STEPS} steps of {CKPT_STEP_S}s, best of 3 "
            "interleaved pairs)",
            f"plain run         {plain:.3f}s",
            f"checkpointed run  {ckpt:.3f}s "
            f"({results['writes']} checkpoint writes, "
            f"wall delta {wall_delta:+.1%})",
            f"durability cost   {direct:.3f}s spent in checkpoint "
            "writes + journal appends",
            f"overhead          {overhead:+.1%} of the plain run "
            "(gate: <= 10%)",
        ],
    )
    benchmark.extra_info["checkpoint_overhead"] = overhead
    benchmark.extra_info["gate_metrics"] = {
        "plain_run_s": plain,
        "checkpointed_run_s": ckpt,
        "durability_direct_s": direct,
    }

    # The run actually checkpointed (baseline + at least one interval).
    assert results["writes"] >= 2
    assert overhead <= 0.10


# ---------------------------------------------------------------------------
# Sharded runtime overhead: process isolation must not tax steady state
# ---------------------------------------------------------------------------
def test_sharded_overhead(benchmark):
    """Sharding gate: running the per-region engines as supervised
    worker processes adds at most 15% to the steady-state recognition
    loop.

    Both sides are timed on ``ingest.loop_seconds`` — the instrumented
    span of the recognition loop itself — so the one-off sharded costs
    that happen *outside* the loop (forking four workers, shipping the
    fed engines, the shutdown drain and registry merge) are excluded
    by construction and only the per-step costs are gated: feed
    fan-out over the bus, snapshot serialisation back, write-ahead
    journaling and the interval checkpoint each worker owns.  Attempts
    are interleaved and the best of three kept, as in the checkpoint
    gate above."""
    build_plain = _pipeline_factory()
    build_sharded = _pipeline_factory(sharded=True)
    end = CKPT_STEPS * CKPT_STEP_S
    results = {}

    def loop_seconds(report):
        return report.metrics["timings"]["ingest.loop_seconds"]["total"]

    def run():
        plain_times, sharded_times = [], []
        for _ in range(3):
            system, _ = build_plain()
            gc.collect()
            plain_times.append(loop_seconds(system.run(0, end)))

            system, _ = build_sharded()
            gc.collect()
            report = system.run(0, end)
            assert report.shard_events == []  # a restart would skew it
            sharded_times.append(loop_seconds(report))
        results["plain"] = min(plain_times)
        results["sharded"] = min(sharded_times)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    plain, sharded = results["plain"], results["sharded"]
    overhead = sharded / plain - 1.0

    emit(
        "fig4_sharded_overhead.txt",
        [
            "Sharded-runtime overhead on the recognition loop "
            f"({CKPT_STEPS} steps of {CKPT_STEP_S}s, 4 worker "
            "processes, best of 3 interleaved pairs)",
            f"single-process loop  {plain:.3f}s",
            f"sharded loop         {sharded:.3f}s",
            f"overhead             {overhead:+.1%} (gate: <= 15%)",
        ],
    )
    benchmark.extra_info["sharded_overhead"] = overhead
    benchmark.extra_info["gate_metrics"] = {
        "plain_loop_s": plain,
        "sharded_loop_s": sharded,
    }

    assert overhead <= 0.15
