"""Ablation A1: working memory vs step under delayed SDE arrival.

Section 4.2 argues that when SDEs arrive with delays "it is preferable
to make WM longer than the step": events occurring before the previous
query time but arriving after it are only considered if the window
still covers them (Figure 2).  This ablation quantifies the trade-off:
recall of delayed events versus recognition cost, for window/step
ratios 1x, 2x and 3x.
"""

from __future__ import annotations

import random

import pytest

from repro.core import RTEC, Event, Occurrence, RecognitionLog
from repro.core.rules import FunctionalEvent

from conftest import emit

STEP = 300
DURATION = 6000
N_EVENTS = 2000
MAX_DELAY = 450  # some delays exceed one step


def _delayed_stream(seed: int = 1) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for i in range(N_EVENTS):
        t = rng.randrange(0, DURATION)
        delay = rng.randrange(0, MAX_DELAY) if rng.random() < 0.3 else 0
        events.append(Event("ping", t, {"id": i}, arrival=t + delay))
    return events


def _echo():
    return FunctionalEvent(
        "echo",
        lambda ctx: [
            Occurrence("echo", (e["id"],), e.time) for e in ctx.events("ping")
        ],
    )


def _run(window_factor: int, events: list[Event]):
    engine = RTEC([_echo()], window=STEP * window_factor, step=STEP)
    engine.feed(events)
    log = RecognitionLog()
    recognised: set[int] = set()
    considered = 0
    for snapshot in engine.run(DURATION + STEP * window_factor):
        fresh = log.add(snapshot)
        recognised.update(o.key[0] for o in fresh.of_type("echo"))
        considered += snapshot.n_events
    return {
        "factor": window_factor,
        "recognised": len(recognised),
        "recall": len(recognised) / N_EVENTS,
        "mean_elapsed": log.mean_elapsed,
        "considered": considered,
    }


def test_ablation_window_vs_step(benchmark):
    events = _delayed_stream()
    rows = {}

    def run():
        rows["series"] = [_run(factor, events) for factor in (1, 2, 3)]
        return rows["series"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    series = rows["series"]

    lines = [
        "Ablation A1 — window size vs step under delayed arrivals "
        f"({N_EVENTS} SDEs, 30% delayed up to {MAX_DELAY}s, step {STEP}s)",
        f"{'WM/step':>8} {'recognised':>11} {'recall':>8} "
        f"{'SDEs considered':>16} {'mean step cost (ms)':>20}",
    ]
    for row in series:
        lines.append(
            f"{row['factor']:>7}x {row['recognised']:>11} "
            f"{row['recall']:>8.1%} {row['considered']:>16} "
            f"{row['mean_elapsed'] * 1000:>20.2f}"
        )
    lines.append(
        "paper's Figure 2 argument: WM > step catches SDEs that arrive "
        "after their window's query time; WM = step loses them."
    )
    emit("ablation_window_step.txt", lines)
    # Process-time step cost across the WM/step ratios, for the
    # regression gate (wall-clock at this scale is mostly noise).
    benchmark.extra_info["gate_metrics"] = {
        "window_series_step_cost_s": sum(
            row["mean_elapsed"] for row in series
        ),
    }

    # --- shape assertions -------------------------------------------------
    # 1. WM = step loses delayed events; growing the window recovers
    #    more of them.
    assert series[0]["recall"] < 1.0
    assert series[1]["recall"] > series[0]["recall"]
    # 2. With delays bounded by 1.5 steps, WM = 3x captures everything
    #    (a delayed SDE is at most step + delay behind its query time).
    assert series[2]["recall"] == pytest.approx(1.0, abs=1e-9)
    # 3. The cost driver grows with the window: wider windows consider
    #    (and re-consider) more SDEs per step.  (Wall-clock per step at
    #    this tiny scale is warm-up-dominated noise, so the assertion
    #    is on the deterministic work measure.)
    assert series[2]["considered"] > series[1]["considered"]
    assert series[1]["considered"] > series[0]["considered"]
