"""Ablation A4: sensitivity of the GP to the kernel hyperparameters.

The paper fixes the regularized-Laplacian kernel's ``α`` and ``β`` by
grid search over [0, 10] without reporting the surface (Section 7.3).
This ablation maps it: held-out RMSE across the (α, β) grid, showing
that ``α`` (the correlation length over the street graph) is the lever
that matters and that an interior optimum exists, which justifies the
grid search rather than a default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dublin import DublinScenario, ScenarioConfig, greenshields_flow
from repro.traffic_model import TrafficFlowModel

from conftest import emit

ALPHAS = (0.25, 1.0, 2.5, 5.0, 10.0)
BETAS = (0.002, 0.01, 0.05, 0.25, 1.0)
SNAPSHOT_T = int(8.5 * 3600)


def _workload():
    scenario = DublinScenario(
        ScenarioConfig(
            seed=29,
            rows=16,
            cols=16,
            n_intersections=70,
            n_buses=10,
            n_lines=4,
            n_incidents=4,
            incident_window=(SNAPSHOT_T - 1800, SNAPSHOT_T + 1800),
        )
    )
    truth = {
        node: greenshields_flow(
            scenario.ground_truth.density(node, SNAPSHOT_T)
        )
        for node in scenario.network.graph.nodes
    }
    observed = {node: truth[node] for node in scenario.node_of.values()}
    hidden = {
        n: truth[n] for n in scenario.network.graph.nodes if n not in observed
    }
    return scenario, observed, hidden


def _surface():
    scenario, observed, hidden = _workload()
    surface = {}
    for alpha in ALPHAS:
        for beta in BETAS:
            model = TrafficFlowModel(
                scenario.network.graph, alpha=alpha, beta=beta, noise=15.0
            )
            model.fit(observed)
            surface[(alpha, beta)] = model.rmse(hidden)
    baseline = float(
        np.sqrt(
            np.mean(
                [
                    (np.mean(list(observed.values())) - v) ** 2
                    for v in hidden.values()
                ]
            )
        )
    )
    return surface, baseline


def test_ablation_gp_kernel_sensitivity(benchmark):
    result = {}

    def run():
        result["out"] = _surface()
        return result["out"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    surface, baseline = result["out"]

    lines = [
        "Ablation A4 — GP kernel hyperparameter sensitivity "
        "(held-out flow RMSE, veh/h; mean-baseline "
        f"{baseline:.0f})",
        "alpha\\beta" + "".join(f"{b:>9}" for b in BETAS),
    ]
    for alpha in ALPHAS:
        lines.append(
            f"{alpha:>9}"
            + "".join(f"{surface[(alpha, b)]:>9.0f}" for b in BETAS)
        )
    best = min(surface, key=surface.get)
    lines.append(
        f"best: alpha={best[0]}, beta={best[1]} "
        f"(RMSE {surface[best]:.0f}, {(1 - surface[best] / baseline):.0%} "
        "better than baseline)"
    )
    lines.append(
        "finding: accuracy varies severalfold across the grid — the "
        "paper's grid search is necessary, not cosmetic."
    )
    emit("ablation_gp_kernel.txt", lines)

    # --- shape assertions -------------------------------------------------
    values = list(surface.values())
    # 1. The grid matters: worst combo is much worse than the best.
    assert max(values) > 1.3 * min(values)
    # 2. The best combo beats the mean baseline.
    assert surface[best] < baseline
    # 3. For beta fixed at its best value, larger correlation lengths
    #    (alpha) help on this spatially smooth field.
    best_beta = best[1]
    column = [surface[(a, best_beta)] for a in ALPHAS]
    assert column[-1] < column[0]
