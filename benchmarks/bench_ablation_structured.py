"""Ablation A5: flat vs structured intersection-congestion definition.

Section 4.3 sketches two ways to define intersection congestion: the
flat "at least n of its sensors are congested", and "a more structured
intersection congestion definition that depends on approach congestion
which in turn would depend on sensor congestion".  This ablation
compares them on the same stream: recognition cost (an extra stratum
per query) and behaviour (the structured definition requires the
congestion to span distinct approaches, so a single blocked lane does
not flag the whole intersection).
"""

from __future__ import annotations

import pytest

from repro.core import RTEC, RecognitionLog
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.dublin import DublinScenario, ScenarioConfig

from conftest import emit

DURATION = 3600


def _scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=43,
            rows=14,
            cols=14,
            n_intersections=80,
            sensors_range=(4, 4),  # every intersection: 4 approaches
            n_buses=40,
            n_lines=8,
            n_incidents=40,
            incident_window=(0, DURATION),
        )
    )


def _run(structured: bool):
    scenario = _scenario()
    data = scenario.generate(0, DURATION)
    params = default_traffic_params()
    engine = RTEC(
        build_traffic_definitions(
            scenario.topology,
            adaptive=False,
            structured_intersections=structured,
        ),
        window=900,
        step=300,
        params=params,
    )
    engine.feed(data.events, data.facts)
    log = RecognitionLog()
    episodes = set()
    for snapshot in engine.run(DURATION):
        fresh = log.add(snapshot)
        for name, key, start, _ in fresh.episodes:
            if name == "scatsIntCongestion":
                episodes.add((key, start))
    return {
        "mode": "structured" if structured else "flat",
        "episodes": len(episodes),
        "mean_elapsed": log.mean_elapsed,
        "n_sdes": data.n_sdes,
    }


def test_ablation_structured_intersections(benchmark):
    rows = {}

    def run():
        rows["series"] = [_run(False), _run(True)]
        return rows["series"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    flat, structured = rows["series"]

    lines = [
        "Ablation A5 — flat vs structured intersection congestion "
        f"({flat['n_sdes']} SDEs, 4 sensors per intersection)",
        f"{'definition':<14}{'episodes':>10}{'mean query cost (ms)':>22}",
        f"{flat['mode']:<14}{flat['episodes']:>10}"
        f"{flat['mean_elapsed'] * 1000:>22.1f}",
        f"{structured['mode']:<14}{structured['episodes']:>10}"
        f"{structured['mean_elapsed'] * 1000:>22.1f}",
        "finding: the structured definition (sensor -> approach -> "
        "intersection) is a stricter filter — congestion must span "
        "distinct approaches — at a comparable recognition cost.",
    ]
    emit("ablation_structured.txt", lines)

    # --- shape assertions -------------------------------------------------
    # 1. Both definitions produce episodes on this incident-rich stream.
    assert flat["episodes"] > 0
    # 2. The structured definition is at most as permissive as the flat
    #    one here: flat needs any 2 congested sensors, structured needs
    #    2 congested *approaches*.
    assert structured["episodes"] <= flat["episodes"]
    # 3. The extra stratum does not blow up recognition cost.
    assert structured["mean_elapsed"] < flat["mean_elapsed"] * 3 + 0.05
